"""The unified exception hierarchy (repro.errors) and its re-homing."""

import pickle

import pytest

import repro
import repro.coherence.checker
import repro.errors as errors
import repro.sim.kernel
import repro.system
from repro import api


class TestAliases:
    """The pre-existing homes must re-export the *same* classes, so code
    written against either location catches the other's raises."""

    def test_system_deadlock_alias(self):
        assert repro.system.DeadlockError is errors.DeadlockError

    def test_kernel_simulation_alias(self):
        assert repro.sim.kernel.SimulationError is errors.SimulationError

    def test_checker_violation_alias(self):
        assert (repro.coherence.checker.ProtocolViolation
                is errors.ProtocolViolation)

    def test_top_level_deadlock_alias(self):
        assert repro.DeadlockError is errors.DeadlockError


class TestHierarchy:
    def test_everything_is_a_reproerror(self):
        for cls in (errors.SimulationError, errors.DeadlockError,
                    errors.LivelockDetected, errors.ProtocolViolation,
                    errors.RunTimeout, errors.ExecutorError):
            assert issubclass(cls, errors.ReproError)

    def test_legacy_secondary_bases(self):
        # historical raisers used RuntimeError / AssertionError; callers
        # catching those base classes must keep working
        assert issubclass(errors.SimulationError, RuntimeError)
        assert issubclass(errors.DeadlockError, RuntimeError)
        assert issubclass(errors.ProtocolViolation, AssertionError)

    def test_one_except_clause_catches_the_lot(self):
        with pytest.raises(errors.ReproError):
            raise errors.LivelockDetected("spinning")
        with pytest.raises(errors.ReproError):
            raise errors.RunTimeout("too slow")


class TestStructuredFields:
    def test_livelock_fields(self):
        err = errors.LivelockDetected(
            "frozen", cycle=40_000, window=10_000,
            stalled_threads=(1, 2, 3), locks={0: 7},
        )
        assert err.cycle == 40_000
        assert err.window == 10_000
        assert err.stalled_threads == (1, 2, 3)
        assert err.locks == {0: 7}

    def test_run_timeout_fields(self):
        err = errors.RunTimeout("budget", timeout_s=1.5, cycle=123)
        assert err.timeout_s == 1.5 and err.cycle == 123

    def test_executor_error_fields(self):
        err = errors.ExecutorError(
            "worker died", fingerprint="ab" * 32,
            spec_label="vips[...]", worker_traceback="Traceback ...",
        )
        assert err.fingerprint == "ab" * 32
        assert err.spec_label == "vips[...]"
        assert err.worker_traceback.startswith("Traceback")


class TestPickling:
    """Pool workers ship these across process boundaries."""

    @pytest.mark.parametrize("err", [
        errors.DeadlockError("stuck at cycle 9"),
        errors.LivelockDetected("frozen", cycle=7, window=5,
                                stalled_threads=(0, 1), locks={0: 2}),
        errors.RunTimeout("budget", timeout_s=0.5, cycle=99),
        errors.ExecutorError("boom", fingerprint="f" * 64,
                             spec_label="x", worker_traceback="tb"),
        errors.ProtocolViolation("two owners for line 0x40"),
    ])
    def test_round_trip_preserves_everything(self, err):
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is type(err)
        assert str(clone) == str(err)
        assert clone.__dict__ == err.__dict__


class TestFacadeExports:
    def test_api_reexports_the_hierarchy(self):
        for name in ("ReproError", "SimulationError", "DeadlockError",
                     "LivelockDetected", "ProtocolViolation", "RunTimeout",
                     "ExecutorError"):
            assert getattr(api, name) is getattr(errors, name)
            assert name in api.__all__
            assert getattr(repro, name) is getattr(errors, name)

    def test_api_exposes_the_module(self):
        assert api.errors is errors
