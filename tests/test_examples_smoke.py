"""Smoke-test the example scripts (the fast ones run fully)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py", "lock_comparison.py",
            "inpg_deployment_study.py", "custom_workload.py",
            "spin_ablation.py", "program_dsl.py",
        } <= names

    def test_program_dsl_runs(self):
        out = run_example("program_dsl.py")
        assert "no lost updates" in out
        assert "Retirement trace" in out

    def test_custom_workload_runs(self):
        out = run_example("custom_workload.py")
        assert "iNPG speedup" in out
        assert "ROI cycles" in out
