"""Tests for the declarative run-plan execution engine (repro.exec)."""

import json

import pytest

from repro.config import NocConfig, SystemConfig
from repro.exec import Executor, ResultCache, RunSpec
from repro.exec.cache import NullCache
from repro.stats.serialize import RESULT_SCHEMA_VERSION


def small_config(**kwargs) -> SystemConfig:
    return SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16,
                        **kwargs)


def small_spec(**kwargs) -> RunSpec:
    defaults = dict(benchmark="vips", mechanism="original",
                    primitive="mcs", scale=0.3, config=small_config())
    defaults.update(kwargs)
    return RunSpec(**defaults)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert small_spec().fingerprint == small_spec().fingerprint

    def test_default_config_and_explicit_default_coincide(self):
        a = RunSpec(benchmark="vips", mechanism="inpg")
        b = RunSpec(benchmark="vips", mechanism="inpg",
                    config=SystemConfig())
        assert a.fingerprint == b.fingerprint

    def test_mechanism_resolves_into_config(self):
        # "inpg" as a mechanism string vs pre-baked config flags:
        # same effective run, same content address
        a = RunSpec(benchmark="vips", mechanism="inpg")
        b = RunSpec(benchmark="vips", mechanism=None,
                    config=SystemConfig().with_mechanism("inpg"))
        assert a.fingerprint == b.fingerprint

    @pytest.mark.parametrize("change", [
        {"benchmark": "dedup"},
        {"mechanism": "inpg"},
        {"primitive": "qsl"},
        {"scale": 0.5},
        {"seed": 7},
        {"max_cycles": 1_000_000},
        {"config": small_config(seed=99)},
    ])
    def test_each_field_changes_fingerprint(self, change):
        assert small_spec(**change).fingerprint != small_spec().fingerprint

    def test_lock_homes_is_part_of_the_key(self):
        # a sweep over lock placement must never hit a stale entry for a
        # different placement
        default = small_spec()
        pinned = small_spec(lock_homes=(5,))
        other = small_spec(lock_homes=(9,))
        prints = {default.fingerprint, pinned.fingerprint, other.fingerprint}
        assert len(prints) == 3

    def test_lock_homes_sequence_type_is_normalized(self):
        assert (small_spec(lock_homes=[5, 9]).fingerprint ==
                small_spec(lock_homes=(5, 9)).fingerprint)

    def test_microbench_defaults_resolve(self):
        implicit = RunSpec.microbench(config=small_config())
        explicit = RunSpec.microbench(
            cs_per_thread=4, cs_cycles=100, parallel_cycles=200,
            config=small_config(),
        )
        assert implicit.fingerprint == explicit.fingerprint
        varied = RunSpec.microbench(cs_cycles=60, config=small_config())
        assert varied.fingerprint != implicit.fingerprint


class TestAxisFingerprints:
    """Every simulation axis follows one fingerprint convention: the
    default value is elided (legacy cache keys stay valid), every
    non-default value addresses itself."""

    BASELINE = RunSpec(benchmark="vips", mechanism="original")

    # (RunSpec field, default value, each non-default value)
    SPEC_AXES = [
        ("protocol", "moesi", ("msi", "mesi")),
        ("topology", "mesh", ("torus", "ring")),
        ("arbiter", "rr", ("wrr",)),
    ]

    @pytest.mark.parametrize("field,default,_", SPEC_AXES,
                             ids=lambda v: str(v))
    def test_explicit_default_never_changes_fingerprint(
            self, field, default, _):
        spec = RunSpec(benchmark="vips", mechanism="original",
                       **{field: default})
        assert spec.fingerprint == self.BASELINE.fingerprint

    @pytest.mark.parametrize("field,default,values", SPEC_AXES,
                             ids=lambda v: str(v))
    def test_each_non_default_value_addresses_itself(
            self, field, default, values):
        prints = {self.BASELINE.fingerprint}
        for value in values:
            spec = RunSpec(benchmark="vips", mechanism="original",
                           **{field: value})
            prints.add(spec.fingerprint)
            assert f"{field}={value}" in spec.label()
        assert len(prints) == 1 + len(values)

    def test_flit_engine_axis_same_convention(self):
        flit = SystemConfig(noc=NocConfig(flit_level=True))
        base = RunSpec(benchmark="vips", mechanism="original", config=flit)
        event = RunSpec(
            benchmark="vips", mechanism="original",
            config=flit.with_overrides(noc={"flit_engine": "event"}))
        vector = RunSpec(
            benchmark="vips", mechanism="original",
            config=flit.with_overrides(noc={"flit_engine": "vector"}))
        assert event.fingerprint == base.fingerprint
        assert vector.fingerprint != base.fingerprint

    def test_placement_axis_same_convention(self):
        inpg = RunSpec(benchmark="vips", mechanism="inpg")
        spread = RunSpec(
            benchmark="vips", mechanism="inpg",
            config=SystemConfig().with_overrides(
                inpg={"enabled": True, "placement": "spread"}))
        center = RunSpec(
            benchmark="vips", mechanism="inpg",
            config=SystemConfig().with_overrides(
                inpg={"enabled": True, "placement": "center"}))
        assert spread.fingerprint == inpg.fingerprint
        assert center.fingerprint != inpg.fingerprint

    def test_wrr_weights_inert_under_default_arbiter(self):
        # weights only matter once the WRR arbiter reads them
        weighted = RunSpec(
            benchmark="vips", mechanism="original",
            config=SystemConfig().with_overrides(
                noc={"wrr_weights": (7, 3)}))
        assert weighted.fingerprint == self.BASELINE.fingerprint
        wrr_a = RunSpec(benchmark="vips", mechanism="original",
                        arbiter="wrr")
        wrr_b = RunSpec(
            benchmark="vips", mechanism="original", arbiter="wrr",
            config=SystemConfig().with_overrides(
                noc={"wrr_weights": (7, 3)}))
        assert wrr_b.fingerprint != wrr_a.fingerprint

    def test_legacy_payload_shape_is_stable(self):
        """The canonical payload of a default spec carries none of the
        axis keys — byte-for-byte the pre-axis cache address."""
        payload = self.BASELINE.canonical_payload()
        noc = payload["config"]["noc"]
        for key in ("topology", "arbiter", "wrr_weights", "flit_engine"):
            assert key not in noc, key
        assert "placement" not in payload["config"]["inpg"]
        assert "protocol" not in payload["config"]

    def test_axis_specs_roundtrip_to_dict(self):
        spec = RunSpec(benchmark="vips", mechanism="original",
                       topology="torus", arbiter="wrr")
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint


class TestExecutor:
    def test_plan_dedups_identical_specs(self, tmp_path):
        ex = Executor(jobs=1, cache_dir=tmp_path)
        results = ex.run([small_spec(), small_spec()])
        assert ex.stats.executed == 1
        assert ex.stats.memory_hits == 1
        assert len(results) == 1  # same spec, one mapping entry

    def test_memory_hits_across_plans(self, tmp_path):
        ex = Executor(jobs=1, cache_dir=tmp_path)
        first = ex.run_one(small_spec())
        second = ex.run_one(small_spec())
        assert second is first
        assert ex.stats.executed == 1
        assert ex.stats.memory_hits == 1

    def test_disk_cache_survives_executor_instances(self, tmp_path):
        spec = small_spec()
        ex1 = Executor(jobs=1, cache_dir=tmp_path)
        r1 = ex1.run_one(spec)
        assert ex1.stats.executed == 1
        # fresh executor, same directory: zero simulations executed
        ex2 = Executor(jobs=1, cache_dir=tmp_path)
        r2 = ex2.run_one(spec)
        assert ex2.stats.executed == 0
        assert ex2.stats.disk_hits == 1
        assert r2.roi_cycles == r1.roi_cycles
        assert r2.summary() == r1.summary()
        assert r2.timeline.intervals == r1.timeline.intervals

    def test_clear_memory_keeps_disk(self, tmp_path):
        spec = small_spec()
        ex = Executor(jobs=1, cache_dir=tmp_path)
        ex.run_one(spec)
        ex.clear_memory()
        ex.run_one(spec)
        assert ex.stats.executed == 1
        assert ex.stats.disk_hits == 1

    def test_no_cache_writes_nothing(self, tmp_path):
        ex = Executor(jobs=1, use_cache=False)
        assert isinstance(ex.cache, NullCache)
        ex.run_one(small_spec())
        assert ex.stats.executed == 1
        assert list(tmp_path.iterdir()) == []

    def test_stats_record_observability(self, tmp_path):
        ex = Executor(jobs=1, cache_dir=tmp_path)
        result = ex.run_one(small_spec())
        [record] = ex.stats.records
        assert record.sim_cycles == result.roi_cycles
        assert record.sim_events > 0
        assert record.wall_time > 0
        footer = ex.stats.render_footer(jobs=1, cache_dir=str(tmp_path))
        assert "executed: 1" in footer
        assert "hit rate: 0.0%" in footer


class TestDiskCacheInvalidation:
    def test_schema_bump_invalidates_entry(self, tmp_path):
        spec = small_spec()
        ex1 = Executor(jobs=1, cache_dir=tmp_path)
        r1 = ex1.run_one(spec)
        # simulate an entry written by an older serialization schema
        [entry_path] = tmp_path.glob("*.json")
        entry = json.loads(entry_path.read_text())
        assert entry["schema"] == RESULT_SCHEMA_VERSION
        entry["schema"] = RESULT_SCHEMA_VERSION - 1
        entry_path.write_text(json.dumps(entry))
        ex2 = Executor(jobs=1, cache_dir=tmp_path)
        r2 = ex2.run_one(spec)
        # the stale entry was ignored (not mis-read): a real re-run
        assert ex2.stats.disk_hits == 0
        assert ex2.stats.executed == 1
        assert r2.roi_cycles == r1.roi_cycles
        # and the fresh run healed the entry back to the current schema
        entry = json.loads(entry_path.read_text())
        assert entry["schema"] == RESULT_SCHEMA_VERSION

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = small_spec()
        Executor(jobs=1, cache_dir=tmp_path).run_one(spec)
        [entry_path] = tmp_path.glob("*.json")
        entry_path.write_text("{not json")
        ex = Executor(jobs=1, cache_dir=tmp_path)
        ex.run_one(spec)
        assert ex.stats.executed == 1

    def test_cache_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        Executor(jobs=1, cache=cache).run_one(small_spec())
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestCommonIntegration:
    def test_cached_run_includes_lock_homes(self, tmp_path):
        # lock placement threads all the way through the generator call
        from repro.experiments.common import cached_run, set_executor

        set_executor(Executor(jobs=1, cache_dir=tmp_path))
        try:
            pinned = cached_run("vips", "original", primitive="mcs",
                                scale=0.3, config=small_config(),
                                lock_homes=(3,))
            default = cached_run("vips", "original", primitive="mcs",
                                 scale=0.3, config=small_config())
            # both simulated: different placements are different runs
            from repro.experiments.common import get_executor

            assert get_executor().stats.executed == 2
            assert pinned is not default
        finally:
            set_executor(Executor())
