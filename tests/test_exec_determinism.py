"""Determinism across process boundaries.

The parallel executor and the disk cache both rest on one invariant: a
run is a pure function of its spec, so executing in a worker subprocess
(and shipping the result back through serialization) yields exactly the
simulation an in-process run yields.
"""

import pytest

from repro.config import NocConfig, SystemConfig
from repro.exec import Executor, RunSpec
from repro.exec.executor import _pool_worker, execute_spec
from repro.stats.serialize import deserialize_run_result


def specs():
    cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)
    return [
        RunSpec.microbench(
            home_node=5, cs_per_thread=2, cs_cycles=60, parallel_cycles=150,
            mechanism=mech, primitive="tas", config=cfg,
        )
        for mech in ("original", "inpg")
    ]


@pytest.fixture(scope="module")
def inline_results():
    ex = Executor(jobs=1, use_cache=False)
    plan = specs()
    return plan, ex.run(plan)


class TestWorkerEquivalence:
    def test_pool_worker_protocol_matches_inline(self, inline_results):
        # the exact function ProcessPoolExecutor runs, called directly:
        # serialize -> deserialize must reproduce the inline run
        plan, inline = inline_results
        for spec in plan:
            fingerprint, payload, wall = _pool_worker(spec)
            assert fingerprint == spec.fingerprint
            assert wall > 0
            shipped = deserialize_run_result(payload)
            mine = inline[spec]
            assert shipped.roi_cycles == mine.roi_cycles
            assert shipped.network_packets == mine.network_packets
            assert shipped.coherence.msg_counts == mine.coherence.msg_counts
            assert shipped.summary() == mine.summary()

    def test_subprocess_execution_matches_inline(self, inline_results):
        # a real ProcessPoolExecutor fan-out (jobs=2, two specs)
        plan, inline = inline_results
        ex = Executor(jobs=2, use_cache=False)
        parallel = ex.run(plan)
        assert ex.stats.executed == 2
        for spec in plan:
            mine, theirs = inline[spec], parallel[spec]
            assert theirs.roi_cycles == mine.roi_cycles
            assert theirs.network_packets == mine.network_packets
            assert theirs.coherence.msg_counts == mine.coherence.msg_counts
            assert (len(theirs.coherence.lock_txns) ==
                    len(mine.coherence.lock_txns))
            assert (len(theirs.coherence.inv_records) ==
                    len(mine.coherence.inv_records))
            assert theirs.timeline.intervals == mine.timeline.intervals

    def test_execute_spec_is_reproducible(self):
        spec = specs()[0]
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first.roi_cycles == second.roi_cycles
        assert first.summary() == second.summary()
