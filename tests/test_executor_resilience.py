"""Executor resilience: timeouts, bounded retry, graceful degradation."""

import pytest

import repro.exec.executor as executor_mod
from repro.errors import (
    DeadlockError,
    ExecutorError,
    ReproError,
    RunTimeout,
    SimulationError,
)
from repro.exec import Executor, RunSpec, is_transient_error

from test_exec import small_spec


def deadlocking_spec(**kwargs) -> RunSpec:
    """A spec whose cycle budget is far too small: it fails fast and
    deterministically with DeadlockError, in any process."""
    defaults = dict(max_cycles=200)
    defaults.update(kwargs)
    return small_spec(**defaults)


class TestTransientClassification:
    @pytest.mark.parametrize("error,transient", [
        (OSError("pipe"), True),
        (EOFError(), True),
        (RunTimeout("budget"), False),        # ReproError: deterministic
        (DeadlockError("stuck"), False),
        (SimulationError("bad"), False),      # RuntimeError subclass, still not
        (ValueError("nope"), False),
        (KeyboardInterrupt(), False),
    ])
    def test_is_transient_error(self, error, transient):
        assert is_transient_error(error) is transient


class TestTimeout:
    def test_zero_budget_raises_runtimeout(self, tmp_path):
        executor = Executor(cache_dir=tmp_path, timeout_s=0.0)
        spec = small_spec()
        with pytest.raises(RunTimeout) as excinfo:
            executor.run_one(spec)
        assert excinfo.value.cycle is not None
        assert "wall-clock budget" in str(excinfo.value)

    def test_timed_out_run_is_never_cached(self, tmp_path):
        executor = Executor(cache_dir=tmp_path)
        spec = small_spec()
        with pytest.raises(RunTimeout):
            executor.run_one(spec, timeout_s=0.0)
        assert executor.cache.get(spec.fingerprint) is None
        # ...so a re-run with a sane budget really simulates and succeeds
        result = executor.run_one(spec, timeout_s=None)
        assert result.roi_cycles > 0
        assert executor.cache.get(spec.fingerprint) is not None

    def test_per_call_override_beats_constructor(self, tmp_path):
        executor = Executor(cache_dir=tmp_path, timeout_s=0.0)
        result = executor.run_one(small_spec(), timeout_s=300.0)
        assert result.roi_cycles > 0


class TestRetry:
    def test_transient_failures_retry_until_success(self, tmp_path,
                                                    monkeypatch):
        calls = {"n": 0}
        real = executor_mod.execute_spec

        def flaky(spec, observe=None, timeout_s=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("worker pipe burst")
            return real(spec, observe=observe, timeout_s=timeout_s)

        monkeypatch.setattr(executor_mod, "execute_spec", flaky)
        executor = Executor(cache_dir=tmp_path, retries=2, backoff_s=0.0)
        result = executor.run_one(small_spec())
        assert result.roi_cycles > 0
        assert calls["n"] == 3

    def test_retries_exhausted_reraises_original(self, tmp_path,
                                                 monkeypatch):
        calls = {"n": 0}

        def always_down(spec, observe=None, timeout_s=None):
            calls["n"] += 1
            raise OSError("worker pipe burst")

        monkeypatch.setattr(executor_mod, "execute_spec", always_down)
        executor = Executor(cache_dir=tmp_path, retries=2, backoff_s=0.0)
        with pytest.raises(OSError):
            executor.run_one(small_spec())
        assert calls["n"] == 3  # initial + 2 retries

    def test_deterministic_failures_never_retry(self, tmp_path,
                                                monkeypatch):
        calls = {"n": 0}

        def deadlocked(spec, observe=None, timeout_s=None):
            calls["n"] += 1
            raise DeadlockError("same spec, same deadlock")

        monkeypatch.setattr(executor_mod, "execute_spec", deadlocked)
        executor = Executor(cache_dir=tmp_path, retries=5, backoff_s=0.0)
        with pytest.raises(DeadlockError):
            executor.run_one(small_spec())
        assert calls["n"] == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            Executor(use_cache=False, retries=-1)


class TestSkipMode:
    def test_partial_results_and_failure_records(self, tmp_path):
        executor = Executor(cache_dir=tmp_path, on_error="skip")
        bad = deadlocking_spec()
        good = small_spec()
        results = executor.run([bad, good])
        assert results[bad] is None
        assert results[good].roi_cycles > 0
        assert executor.stats.failed == 1
        [record] = executor.stats.failures
        assert record.fingerprint == bad.fingerprint
        assert record.error_type == "DeadlockError"
        assert record.label == bad.label()

    def test_footer_reports_failures(self, tmp_path):
        executor = Executor(cache_dir=tmp_path, on_error="skip")
        executor.run([deadlocking_spec()])
        footer = executor.stats.render_footer(jobs=1)
        assert "failed: 1" in footer
        assert "FAILED" in footer
        assert "DeadlockError" in footer

    def test_raise_mode_propagates_original_inline(self, tmp_path):
        # back-compat: inline callers keep catching DeadlockError itself
        executor = Executor(cache_dir=tmp_path)
        with pytest.raises(DeadlockError):
            executor.run_one(deadlocking_spec())

    def test_failed_spec_is_retried_by_a_later_run(self, tmp_path,
                                                   monkeypatch):
        down = {"yes": True}
        real = executor_mod.execute_spec

        def sometimes(spec, observe=None, timeout_s=None):
            if down["yes"]:
                raise OSError("cache node rebooting")
            return real(spec, observe=observe, timeout_s=timeout_s)

        monkeypatch.setattr(executor_mod, "execute_spec", sometimes)
        executor = Executor(cache_dir=tmp_path, on_error="skip")
        spec = small_spec()
        assert executor.run_one(spec) is None
        down["yes"] = False  # infra recovered; failure was not memoized
        assert executor.run_one(spec).roi_cycles > 0

    def test_bad_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Executor(use_cache=False, on_error="explode")
        executor = Executor(cache_dir=tmp_path)
        with pytest.raises(ValueError):
            executor.run([small_spec()], on_error="explode")


class TestPoolResilience:
    def test_worker_failure_raises_executor_error(self, tmp_path):
        executor = Executor(jobs=2, cache_dir=tmp_path)
        bad = deadlocking_spec()
        good = small_spec()
        with pytest.raises(ExecutorError) as excinfo:
            executor.run([bad, good])
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert err.fingerprint == bad.fingerprint
        assert err.spec_label == bad.label()
        assert "DeadlockError" in err.worker_traceback

    def test_pool_skip_returns_partial_results(self, tmp_path):
        executor = Executor(jobs=2, cache_dir=tmp_path, on_error="skip")
        bad = deadlocking_spec()
        good = small_spec()
        results = executor.run([bad, good])
        assert results[bad] is None
        assert results[good].roi_cycles > 0
        assert executor.stats.failures[0].error_type == "DeadlockError"
