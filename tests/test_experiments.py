"""Smoke tests for the experiment harnesses (small scales, fast)."""

import pytest

from repro.experiments import (
    clear_cache,
    fig02_lco,
    fig07_synthesis,
    fig09_timing_profile,
    fig10_rtt,
    fig11_cs_expedition,
    fig12_roi,
    fig13_primitives,
    fig14_deployment,
    table1_config,
)
from repro.experiments.common import (
    ExperimentOptions,
    arithmetic_mean,
    benchmarks_for,
    by_group,
    format_table,
    geometric_mean,
)
from repro.experiments.runner import EXPERIMENTS, main as runner_main


class TestCommon:
    def test_quick_subset_is_two_per_group(self):
        quick = benchmarks_for(True)
        assert len(quick) == 6
        groups = by_group(quick)
        assert all(len(v) == 2 for v in groups.values())

    def test_full_set_is_24(self):
        assert len(benchmarks_for(False)) == 24

    def test_means(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "xyz" in out and "2.50" in out


class TestStaticExperiments:
    def test_table1_renders_config(self):
        out = table1_config.run().render()
        assert "8x8 mesh" in out
        assert "MOESI" in out

    def test_fig7_renders_synthesis(self):
        result = fig07_synthesis.run()
        out = result.render()
        assert "19900" in out.replace(",", "")
        assert result.generator_gates == 2500


class TestSimulationExperiments:
    """Tiny-scale runs to keep the suite quick."""

    def test_fig2_lco_ordering(self):
        result = fig02_lco.run(ExperimentOptions(scale=0.4),
                               benchmarks=("kdtree",))
        per = result.lco["kdtree"]
        assert set(per) == {"tas", "ticket", "abql", "mcs", "qsl"}
        assert per["tas"] > 0
        assert "LCO" in result.render()

    def test_fig9_profile_structure(self):
        result = fig09_timing_profile.run(ExperimentOptions(scale=0.4))
        rows = result.by_mechanism()
        assert set(rows) == {"original", "ocor", "inpg", "inpg+ocor"}
        for row in rows.values():
            total = row.parallel_share + row.coh_share + row.cse_share
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig10_microbench(self):
        result = fig10_rtt.run(cs_per_thread=1, parallel_cycles=100)
        assert set(result.results) == {"original", "inpg"}
        inpg = result.results["inpg"]
        assert inpg.early_share > 0
        heat = result.heat_map("original")
        assert len(heat) == 8

    def test_fig11_and_fig12_share_runs(self):
        clear_cache()
        small = ExperimentOptions(scale=0.4, quick=True)
        f11 = fig11_cs_expedition.run(small)
        f12 = fig12_roi.run(small)
        assert set(f11.expedition) == set(f12.relative_roi)
        for bench in f12.relative_roi:
            assert f12.relative_roi[bench]["original"] == 1.0
            assert f11.expedition[bench]["original"] == 1.0

    def test_fig13_covers_all_primitives(self):
        result = fig13_primitives.run(
            ExperimentOptions(scale=0.3, quick=True))
        first = next(iter(result.reduction.values()))
        assert set(first) == {"tas", "ticket", "abql", "mcs", "qsl"}

    def test_fig14_includes_zero_deployment(self):
        result = fig14_deployment.run(
            ExperimentOptions(scale=0.3, quick=True), deployments=(0, 32)
        )
        for bench, per in result.expedition.items():
            assert per[0] == 1.0

    def test_topologies_ablation_sweeps_every_fabric(self):
        from repro.experiments import ablation_topology

        result = ablation_topology.run(
            ExperimentOptions(scale=0.25), benchmarks=("vips",)
        )
        assert result.topologies == ("mesh", "torus", "ring")
        for topo in result.topologies:
            for placement in result.placements:
                ratio = result.relative_roi(topo, placement, "vips")
                assert ratio is not None and ratio > 0
            assert result.placement_sensitivity(topo) >= 0.0
        out = result.render()
        assert "placement sensitivity" in out
        for topo in ("mesh", "torus", "ring"):
            assert topo in out

    def test_topologies_ablation_pins_to_one_topology(self):
        from repro.experiments import ablation_topology

        result = ablation_topology.run(
            ExperimentOptions(scale=0.25, topology="torus"),
            benchmarks=("vips",),
        )
        assert result.topologies == ("torus",)
        assert all(key[0] == "torus" for key in result.roi_cycles)

    def test_fig15_small_meshes(self):
        from repro.experiments import fig15_sensitivity
        result = fig15_sensitivity.run(
            ExperimentOptions(scale=0.3, quick=True),
            dims=(2, 4), table_sizes=(16,)
        )
        assert (2, 16) in result.reduction
        assert (4, 16) in result.reduction
        assert "2x2" in result.render()


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_static_experiment(self, capsys):
        assert runner_main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_quick_and_full_conflict_errors(self, capsys):
        # --quick used to be silently ignored; now the pair is mutually
        # exclusive and conflicting invocations error out loudly
        with pytest.raises(SystemExit) as excinfo:
            runner_main(["fig12", "--quick", "--full"])
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err

    def test_quick_flag_is_accepted(self, capsys):
        assert runner_main(["table1", "--quick"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_footer_reports_execution_summary(self, capsys, tmp_path):
        assert runner_main([
            "fig9", "--scale", "0.3", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "run execution summary" in out
        assert "executed: 4" in out
        assert str(tmp_path) in out

    def test_no_cache_flag(self, capsys, tmp_path):
        assert runner_main([
            "fig9", "--scale", "0.3", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache: disabled" in out


def _figure_section(output: str) -> str:
    """Everything up to the timing line (drops wall time + footer)."""
    lines = []
    for line in output.splitlines():
        if line.startswith("["):
            break
        lines.append(line)
    return "\n".join(lines)


class TestParallelAndCachedRegeneration:
    """The PR's acceptance criterion on fig12."""

    def test_jobs_parity_and_warm_cache(self, capsys, tmp_path):
        scale = ["--scale", "0.25"]
        # cold, sequential
        assert runner_main(
            ["fig12", "--jobs", "1", "--cache-dir", str(tmp_path / "a")]
            + scale
        ) == 0
        seq = capsys.readouterr().out
        # cold, parallel, separate cache: must render byte-identically
        assert runner_main(
            ["fig12", "--jobs", "2", "--cache-dir", str(tmp_path / "b")]
            + scale
        ) == 0
        par = capsys.readouterr().out
        assert _figure_section(seq) == _figure_section(par)
        assert "executed: 24" in par
        # warm cache: zero simulations executed, 100% hits
        assert runner_main(
            ["fig12", "--jobs", "2", "--cache-dir", str(tmp_path / "b")]
            + scale
        ) == 0
        warm = capsys.readouterr().out
        assert _figure_section(warm) == _figure_section(par)
        assert "executed: 0" in warm
        assert "hit rate: 100.0%" in warm
