"""Smoke tests for the experiment harnesses (small scales, fast)."""

import pytest

from repro.experiments import (
    clear_cache,
    fig02_lco,
    fig07_synthesis,
    fig09_timing_profile,
    fig10_rtt,
    fig11_cs_expedition,
    fig12_roi,
    fig13_primitives,
    fig14_deployment,
    table1_config,
)
from repro.experiments.common import (
    arithmetic_mean,
    benchmarks_for,
    by_group,
    format_table,
    geometric_mean,
)
from repro.experiments.runner import EXPERIMENTS, main as runner_main


class TestCommon:
    def test_quick_subset_is_two_per_group(self):
        quick = benchmarks_for(True)
        assert len(quick) == 6
        groups = by_group(quick)
        assert all(len(v) == 2 for v in groups.values())

    def test_full_set_is_24(self):
        assert len(benchmarks_for(False)) == 24

    def test_means(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "xyz" in out and "2.50" in out


class TestStaticExperiments:
    def test_table1_renders_config(self):
        out = table1_config.run().render()
        assert "8x8 mesh" in out
        assert "MOESI" in out

    def test_fig7_renders_synthesis(self):
        result = fig07_synthesis.run()
        out = result.render()
        assert "19900" in out.replace(",", "")
        assert result.generator_gates == 2500


class TestSimulationExperiments:
    """Tiny-scale runs to keep the suite quick."""

    def test_fig2_lco_ordering(self):
        result = fig02_lco.run(scale=0.4, benchmarks=("kdtree",))
        per = result.lco["kdtree"]
        assert set(per) == {"tas", "ticket", "abql", "mcs", "qsl"}
        assert per["tas"] > 0
        assert "LCO" in result.render()

    def test_fig9_profile_structure(self):
        result = fig09_timing_profile.run(scale=0.4)
        rows = result.by_mechanism()
        assert set(rows) == {"original", "ocor", "inpg", "inpg+ocor"}
        for row in rows.values():
            total = row.parallel_share + row.coh_share + row.cse_share
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig10_microbench(self):
        result = fig10_rtt.run(cs_per_thread=1, parallel_cycles=100)
        assert set(result.results) == {"original", "inpg"}
        inpg = result.results["inpg"]
        assert inpg.early_share > 0
        heat = result.heat_map("original")
        assert len(heat) == 8

    def test_fig11_and_fig12_share_runs(self):
        clear_cache()
        f11 = fig11_cs_expedition.run(scale=0.4, quick=True)
        f12 = fig12_roi.run(scale=0.4, quick=True)
        assert set(f11.expedition) == set(f12.relative_roi)
        for bench in f12.relative_roi:
            assert f12.relative_roi[bench]["original"] == 1.0
            assert f11.expedition[bench]["original"] == 1.0

    def test_fig13_covers_all_primitives(self):
        result = fig13_primitives.run(scale=0.3, quick=True)
        first = next(iter(result.reduction.values()))
        assert set(first) == {"tas", "ticket", "abql", "mcs", "qsl"}

    def test_fig14_includes_zero_deployment(self):
        result = fig14_deployment.run(
            scale=0.3, quick=True, deployments=(0, 32)
        )
        for bench, per in result.expedition.items():
            assert per[0] == 1.0

    def test_fig15_small_meshes(self):
        from repro.experiments import fig15_sensitivity
        result = fig15_sensitivity.run(
            scale=0.3, quick=True, dims=(2, 4), table_sizes=(16,)
        )
        assert (2, 16) in result.reduction
        assert (4, 16) in result.reduction
        assert "2x2" in result.render()


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_static_experiment(self, capsys):
        assert runner_main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
