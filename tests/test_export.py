"""Tests for result exporters and ASCII renderers."""

import csv
import io
import json

from repro.stats import (
    CoherenceStats,
    RunResult,
    ThreadMetrics,
    Timeline,
    render_gantt,
    render_mesh_heat_map,
    run_result_to_dict,
    to_csv,
    to_json,
)


def sample_result():
    timeline = Timeline()
    timeline.begin(0, "parallel", 0)
    timeline.begin(0, "coh", 60)
    timeline.begin(0, "cse", 90)
    timeline.end(0, 100)
    tm = ThreadMetrics(thread=0)
    tm.parallel_cycles, tm.coh_cycles, tm.cse_cycles = 60, 30, 10
    tm.cs_completed = 1
    return RunResult(
        mechanism="inpg", primitive="qsl", benchmark="freqmine",
        roi_cycles=100, threads=[tm], coherence=CoherenceStats(),
        timeline=timeline,
    )


class TestSerialization:
    def test_dict_roundtrip(self):
        d = run_result_to_dict(sample_result())
        assert d["benchmark"] == "freqmine"
        assert d["roi_cycles"] == 100
        assert d["threads"][0]["coh"] == 30

    def test_json_is_valid(self):
        parsed = json.loads(to_json([sample_result(), sample_result()]))
        assert len(parsed) == 2
        assert parsed[0]["mechanism"] == "inpg"

    def test_csv_has_header_and_rows(self):
        rows = list(csv.DictReader(io.StringIO(to_csv([sample_result()]))))
        assert len(rows) == 1
        assert rows[0]["benchmark"] == "freqmine"
        assert int(rows[0]["roi_cycles"]) == 100


class TestGantt:
    def test_renders_phases(self):
        result = sample_result()
        out = render_gantt(result.timeline, threads=[0], window=(0, 100),
                           width=10)
        assert "t0" in out
        body = out.splitlines()[1]
        assert "." in body      # parallel
        assert "#" in body      # coh
        assert "C" in body      # cse

    def test_empty_timeline(self):
        out = render_gantt(Timeline(), threads=[0])
        assert "t0" in out


class TestHeatMap:
    def test_mesh_layout(self):
        per_node = {0: 1.0, 3: 2.0, 15: 9.0}
        out = render_mesh_heat_map(per_node, 4, 4, title="RTT")
        lines = out.splitlines()
        assert lines[0] == "RTT"
        assert len(lines) == 5
        assert "9.0" in lines[4]
