"""Tests for the deterministic fault-injection subsystem (repro.faults)."""

from dataclasses import replace

import pytest

from repro.config import LockSpinConfig, NocConfig, SystemConfig
from repro.errors import LivelockDetected
from repro.exec import RunSpec, execute_spec
from repro.faults import FaultInjector, FaultPlan, parse_site
from repro.noc.network import Network
from repro.sim import Simulator

from test_golden_determinism import GOLDEN_RUNS, fingerprint_run


def small_config(**kwargs) -> SystemConfig:
    return SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16,
                        **kwargs)


def ttas_config() -> SystemConfig:
    """TTAS polling: a poller whose Inv was dropped spins on its stale
    valid copy forever — the watchdog's canonical livelock shape."""
    return small_config(spin=LockSpinConfig(raw_spin=False))


# ----------------------------------------------------------------------
# Plan syntax and fingerprints
# ----------------------------------------------------------------------
class TestPlanSyntax:
    @pytest.mark.parametrize("token", [
        "drop:0.01",
        "drop:1/Inv#2000..4000",
        "delay:0.2@router:5+16",
        "corrupt:0.001@link:3->4",
        "duplicate:0.05@inject",
        "drop:1/GetX@router:5#100..",
    ])
    def test_describe_is_parse_inverse(self, token):
        site = parse_site(token)
        assert parse_site(site.describe()) == site

    def test_parse_plan_splits_on_commas(self):
        plan = FaultPlan.parse("drop:0.5,delay:1@inject+8", seed=3)
        assert len(plan.sites) == 2
        assert plan.seed == 3
        assert plan.enabled

    @pytest.mark.parametrize("bad", [
        "explode",            # unknown kind
        "drop:1.5",           # rate out of range
        "drop#9..3",          # empty window
        "drop@turbine:4",     # unknown site scheme
        "delay+0",            # delay needs extra_delay >= 1
    ])
    def test_invalid_sites_raise(self, bad):
        with pytest.raises(ValueError):
            parse_site(bad)

    def test_window_and_message_filters(self):
        site = parse_site("drop:1/Inv#100..200")
        assert not site.active(99)
        assert site.active(100) and site.active(199)
        assert not site.active(200)

        class Payload:
            class mtype:
                value = "Inv"

        assert site.matches_payload(Payload)
        assert not site.matches_payload(object())

    def test_empty_plan_is_disabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan().describe() == "none"

    def test_fingerprint_sensitivity(self):
        base = FaultPlan.parse("drop:0.5", seed=1)
        assert base.fingerprint == FaultPlan.parse("drop:0.5", seed=1).fingerprint
        assert base.fingerprint != FaultPlan.parse("drop:0.5", seed=2).fingerprint
        assert base.fingerprint != FaultPlan.parse("drop:0.4", seed=1).fingerprint


class TestSpecFingerprint:
    def test_no_fault_payload_is_legacy_shaped(self):
        """Unset robustness knobs must not add payload keys: every
        pre-existing fingerprint (= disk-cache address) stays stable."""
        payload = RunSpec(benchmark="vips").canonical_payload()
        assert "faults" not in payload
        assert "watchdog_cycles" not in payload
        assert "check_protocol" not in payload
        empty = RunSpec(benchmark="vips", fault_plan=FaultPlan())
        assert empty.fingerprint == RunSpec(benchmark="vips").fingerprint

    def test_each_robustness_knob_changes_fingerprint(self):
        base = RunSpec(benchmark="vips")
        plan = FaultPlan.parse("drop:0.1", seed=1)
        assert base.fingerprint != RunSpec(
            benchmark="vips", fault_plan=plan).fingerprint
        assert base.fingerprint != RunSpec(
            benchmark="vips", watchdog_cycles=10_000).fingerprint
        assert base.fingerprint != RunSpec(
            benchmark="vips", check_protocol=True).fingerprint

    def test_plan_seed_is_part_of_the_key(self):
        a = RunSpec(benchmark="vips",
                    fault_plan=FaultPlan.parse("drop:0.1", seed=1))
        b = RunSpec(benchmark="vips",
                    fault_plan=FaultPlan.parse("drop:0.1", seed=2))
        assert a.fingerprint != b.fingerprint

    def test_faulted_label_names_the_plan(self):
        spec = RunSpec(benchmark="vips",
                       fault_plan=FaultPlan.parse("drop:1/Inv"))
        assert "faults=drop:1/Inv" in spec.label()


# ----------------------------------------------------------------------
# Injector mechanics (pure network level)
# ----------------------------------------------------------------------
class TestInjectorMechanics:
    def _network(self):
        sim = Simulator()
        net = Network(sim, NocConfig(width=4, height=4))
        delivered = []
        for n in range(16):
            net.register_endpoint(n, delivered.append)
        return sim, net, delivered

    def test_inject_drop_consumes_packets(self):
        sim, net, delivered = self._network()
        FaultInjector(FaultPlan.parse("drop:1@inject")).install(net)
        net.send(0, 15, "x")
        sim.run()
        assert delivered == []
        assert net.packets_dropped == 1
        assert net.in_flight == 0

    def test_router_drop_counts_and_traces(self):
        sim, net, delivered = self._network()
        inj = FaultInjector(FaultPlan.parse("drop:1@router:15")).install(net)
        net.send(0, 15, "x")
        net.send(0, 1, "y")  # never enters router 15
        sim.run()
        assert [p.payload for p in delivered] == ["y"]
        assert inj.dropped == 1 and inj.faults_fired == 1

    def test_link_delay_defers_delivery(self):
        sim, net, delivered = self._network()
        # XY routing 0 -> 3 crosses link 2->3
        FaultInjector(
            FaultPlan.parse("delay:1@link:2->3+500")).install(net)
        net.send(0, 3, "x")
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].latency > 500

    def test_duplicate_delivers_twice(self):
        sim, net, delivered = self._network()
        inj = FaultInjector(
            FaultPlan.parse("duplicate:1@inject")).install(net)
        net.send(0, 15, "x")
        sim.run()
        assert len(delivered) == 2
        assert inj.duplicated == 1
        assert net.in_flight == 0

    def test_unknown_link_raises_at_install(self):
        _, net, _ = self._network()
        with pytest.raises(ValueError, match="no link"):
            FaultInjector(FaultPlan.parse("drop:1@link:0->5")).install(net)

    def test_double_install_rejected(self):
        _, net, _ = self._network()
        inj = FaultInjector(FaultPlan.parse("drop:0.1")).install(net)
        with pytest.raises(ValueError, match="already installed"):
            inj.install(net)

    def test_flit_fabric_rejects_router_sites(self):
        from repro.noc.flit_fabric import FlitFabric

        fabric = FlitFabric(Simulator(), NocConfig(width=4, height=4))
        with pytest.raises(ValueError, match="inject"):
            FaultInjector(FaultPlan.parse("drop:1@router:3")).install(fabric)

    def test_flit_fabric_inject_drop(self):
        from repro.noc.flit_fabric import FlitFabric

        sim = Simulator()
        fabric = FlitFabric(sim, NocConfig(width=4, height=4))
        delivered = []
        for n in range(16):
            fabric.register_endpoint(n, delivered.append)
        FaultInjector(FaultPlan.parse("drop:1@inject")).install(fabric)
        fabric.send(0, 15, "x")
        sim.run(until=10_000)
        assert delivered == []
        assert fabric.packets_dropped == 1
        assert fabric.in_flight == 0


# ----------------------------------------------------------------------
# End-to-end determinism
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    def test_no_faults_matches_golden(self):
        """An *empty* plan (and a disarmed watchdog) must leave the run
        byte-identical to the pre-faults implementation."""
        assert fingerprint_run(
            "bwaves", "original", fault_plan=FaultPlan()
        ) == GOLDEN_RUNS[("bwaves", "original")]

    def test_armed_watchdog_does_not_perturb_delivery(self):
        """The watchdog schedules periodic samples (so the event count
        moves) but must not shift a single packet delivery."""
        golden = GOLDEN_RUNS[("bwaves", "inpg")]
        md5, roi, packets, _events = fingerprint_run(
            "bwaves", "inpg", watchdog_cycles=1_000_000
        )
        assert (md5, roi, packets) == golden[:3]

    @staticmethod
    def _faulted_outcome(plan):
        """Delivered-packet digest + outcome of a faulted bwaves run.

        Faults can legitimately kill the run (a delayed packet breaks
        the NoC's point-to-point ordering and the protocol deadlocks);
        determinism then means the *failure* replays bit-exactly too, so
        failures fold into the outcome instead of aborting the test.
        """
        import hashlib

        from repro.errors import ReproError
        from repro.noc.network import Network
        from repro.system import run_benchmark

        digest = hashlib.md5()
        original_deliver = Network.deliver_local

        def recording_deliver(self, packet):
            digest.update(
                b"%d,%d,%d,%d;"
                % (packet.src, packet.dst, packet.size_flits, self.sim.cycle)
            )
            original_deliver(self, packet)

        Network.deliver_local = recording_deliver
        try:
            result = run_benchmark(
                "bwaves", mechanism="original", scale=0.25, seed=2018,
                fault_plan=plan, max_cycles=2_000_000,
            )
            tail = ("done", result.roi_cycles, result.network_packets)
        except ReproError as err:
            tail = (type(err).__name__, str(err))
        finally:
            Network.deliver_local = original_deliver
        return (digest.hexdigest(),) + tail

    def test_same_plan_same_seed_is_bit_exact(self):
        plan = FaultPlan.parse("delay:0.3+16,drop:0.001", seed=7)
        first = self._faulted_outcome(plan)
        second = self._faulted_outcome(plan)
        assert first == second
        assert first[0] != GOLDEN_RUNS[("bwaves", "original")][0]

    def test_plan_seed_changes_the_run(self):
        a = self._faulted_outcome(FaultPlan.parse("delay:0.3+16", seed=1))
        b = self._faulted_outcome(FaultPlan.parse("delay:0.3+16", seed=2))
        assert a != b

    def test_fault_counters_reported_in_extra(self):
        plan = FaultPlan.parse("delay:0.5+8", seed=5)
        spec = RunSpec(benchmark="vips", primitive="mcs", scale=0.3,
                       config=small_config(), fault_plan=plan)
        result = execute_spec(spec)
        assert result.extra["faults/delayed"] > 0
        assert result.extra["faults/dropped"] == 0


# ----------------------------------------------------------------------
# Watchdog detection
# ----------------------------------------------------------------------
class TestWatchdogDetection:
    def test_drop_inv_campaign_is_flagged_as_livelock(self):
        """Dropping every Inv under TTAS polling leaves pollers spinning
        on stale valid copies: sustained events, zero progress — the
        watchdog must convert that into a structured LivelockDetected."""
        spec = RunSpec.microbench(
            home_node=5, mechanism=None, config=ttas_config(),
            primitive="tas",
            fault_plan=FaultPlan.parse("drop:1/Inv#500..", seed=1),
            watchdog_cycles=10_000, max_cycles=2_000_000,
        )
        with pytest.raises(LivelockDetected) as excinfo:
            execute_spec(spec)
        err = excinfo.value
        assert err.window == 10_000
        assert err.cycle and err.cycle <= 2_000_000
        assert err.stalled_threads
        assert err.locks  # lock_id -> acquisitions snapshot

    def test_healthy_run_never_fires(self):
        spec = RunSpec.microbench(
            home_node=5, mechanism=None, config=small_config(),
            watchdog_cycles=5_000,
        )
        result = execute_spec(spec)  # must complete normally
        assert result.roi_cycles > 0


# ----------------------------------------------------------------------
# The unified options path (facade + experiments)
# ----------------------------------------------------------------------
class TestOptionsPath:
    def _livelock_spec(self):
        return RunSpec.microbench(
            home_node=5, mechanism=None, config=ttas_config(),
            primitive="tas", max_cycles=2_000_000,
        )

    def test_run_plan_skips_the_livelocked_run(self):
        """One sweep, one livelocked run: under on_error='skip' the plan
        completes, the other results come back, the failure is recorded
        in the shared execution summary."""
        from repro import api

        healthy = RunSpec.microbench(
            home_node=5, mechanism=None, config=small_config(),
        )
        bad = replace(
            self._livelock_spec(),
            fault_plan=FaultPlan.parse("drop:1/Inv#500..", seed=1),
        )
        opts = api.ExperimentOptions(watchdog_cycles=10_000,
                                     on_error="skip")
        results = api.run_plan([bad, healthy], cache=False, options=opts)
        assert results[0] is None  # the faulted run livelocked
        assert results[1].roi_cycles > 0  # ...and the sweep still finished

    def test_overlay_fills_gaps_but_spec_wins(self):
        from repro.experiments.common import ExperimentOptions

        sweep_plan = FaultPlan.parse("drop:0.1", seed=1)
        pinned_plan = FaultPlan.parse("delay:1+8", seed=2)
        opts = ExperimentOptions(fault_plan=sweep_plan,
                                 watchdog_cycles=9_000)
        bare = RunSpec(benchmark="vips")
        overlaid = opts.apply_to_spec(bare)
        assert overlaid.fault_plan is sweep_plan
        assert overlaid.watchdog_cycles == 9_000
        pinned = RunSpec(benchmark="vips", fault_plan=pinned_plan)
        assert opts.apply_to_spec(pinned).fault_plan is pinned_plan

    def test_executor_policy_carries_the_run_kwargs(self):
        from repro.experiments.common import ExperimentOptions

        opts = ExperimentOptions(timeout_s=1.5, retries=2, on_error="skip")
        assert opts.executor_policy() == {
            "timeout_s": 1.5, "retries": 2, "on_error": "skip",
        }

    def test_figure_harness_degrades_instead_of_crashing(self):
        """A figure whose every run failed must still render (empty),
        with the failures itemized in the executor footer."""
        from repro.exec import Executor
        from repro.experiments import common, fig09_timing_profile

        previous = common.get_executor()
        common.set_executor(Executor(use_cache=False))
        try:
            result = fig09_timing_profile.run(
                common.ExperimentOptions(
                    scale=0.3, timeout_s=0.0, on_error="skip",
                )
            )
            assert result.rows == []
            assert result.render()  # renders the empty table, no crash
            stats = common.get_executor().stats
            assert stats.failed > 0
            assert all(rec.error_type == "RunTimeout"
                       for rec in stats.failures)
        finally:
            common.set_executor(previous)

    def test_legacy_kwargs_raise_with_migration_message(self):
        from repro.experiments.common import resolve_options

        with pytest.raises(TypeError, match="ExperimentOptions"):
            resolve_options(quick=False, scale=0.7)


# ----------------------------------------------------------------------
# Campaign classification
# ----------------------------------------------------------------------
class TestCampaign:
    def test_drop_inv_detected_and_delay_diverges(self, tmp_path):
        from repro.faults.campaign import render_report, run_campaign

        report = run_campaign(
            plans=[FaultPlan.parse("drop:1/Inv#500..", seed=1),
                   FaultPlan.parse("delay:0.5+64", seed=1)],
            primitive="tas",
            watchdog_cycles=10_000,
            max_cycles=2_000_000,
            threads=16,
            home=5,
            use_cache=False,
        )
        by_plan = {row["plan"]: row for row in report["rows"]}
        drop = by_plan["drop:1/Inv#500.."]
        assert drop["outcome"] == "detected"
        assert drop["error"] == "LivelockDetected"
        assert drop["detector"] == "liveness watchdog"
        delay = by_plan["delay:0.5+64"]
        assert delay["outcome"] in ("silent-divergence", "detected")
        assert report["outcomes"]["detected"] >= 1
        text = render_report(report)
        assert "detected" in text and "drop:1/Inv#500.." in text
