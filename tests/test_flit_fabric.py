"""Tests for the flit-level full-system mode."""

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import NocConfig


def flit_config(**kw):
    return SystemConfig(
        noc=NocConfig(width=4, height=4, flit_level=True),
        num_threads=16,
        **kw,
    )


class TestFlitLevelSystem:
    def test_full_run_completes(self):
        cfg = flit_config()
        wl = single_lock_workload(8, home_node=5, cs_per_thread=2,
                                  cs_cycles=50, parallel_cycles=150)
        result = ManyCoreSystem(cfg, wl, primitive="mcs").run(
            max_cycles=20_000_000
        )
        assert result.cs_completed == 16
        assert result.network_mean_latency > 0

    def test_matches_packet_model_order_of_magnitude(self):
        wl = single_lock_workload(8, home_node=5, cs_per_thread=2,
                                  cs_cycles=50, parallel_cycles=150)
        flit = ManyCoreSystem(flit_config(), wl, primitive="mcs").run(
            max_cycles=20_000_000
        )
        packet_cfg = SystemConfig(
            noc=NocConfig(width=4, height=4), num_threads=16
        )
        packet = ManyCoreSystem(packet_cfg, wl, primitive="mcs").run(
            max_cycles=20_000_000
        )
        ratio = flit.roi_cycles / packet.roi_cycles
        assert 0.3 < ratio < 3.0, (flit.roi_cycles, packet.roi_cycles)

    def test_inpg_rejected_on_flit_fabric(self):
        cfg = flit_config().with_mechanism("inpg")
        wl = single_lock_workload(8, home_node=5)
        with pytest.raises(ValueError):
            ManyCoreSystem(cfg, wl, primitive="mcs")

    @pytest.mark.parametrize("primitive", ["tas", "ticket", "qsl"])
    def test_other_primitives_complete(self, primitive):
        cfg = flit_config()
        wl = single_lock_workload(6, home_node=5, cs_per_thread=1,
                                  cs_cycles=40, parallel_cycles=100)
        result = ManyCoreSystem(cfg, wl, primitive=primitive).run(
            max_cycles=20_000_000
        )
        assert result.cs_completed == 6
