"""Tests for the flit-level NoC validation model."""

import pytest

from repro.config import NocConfig
from repro.noc.flitsim import FlitNetwork
from repro.sim import Simulator


def make_fabric(width=4, height=4, **noc_kw):
    sim = Simulator()
    fabric = FlitNetwork(sim, NocConfig(width=width, height=height, **noc_kw))
    return sim, fabric


class TestBasicDelivery:
    def test_single_flit_packet_delivered(self):
        sim, net = make_fabric()
        pkt = net.send(0, 15, length=1)
        sim.run(until=10_000)
        assert pkt.delivered_cycle > 0
        assert net.delivered == [pkt]

    def test_multi_flit_packet_delivered_whole(self):
        sim, net = make_fabric()
        pkt = net.send(0, 15, length=8)
        sim.run(until=10_000)
        assert pkt.latency >= 8  # serialization floor

    def test_zero_load_latency_scales_with_distance(self):
        sim, net = make_fabric(8, 8)
        near = net.send(0, 1, length=1)
        sim.run(until=10_000)
        sim2, net2 = make_fabric(8, 8)
        far = net2.send(0, 63, length=1)
        sim2.run(until=10_000)
        assert far.latency > near.latency

    def test_local_delivery(self):
        sim, net = make_fabric()
        pkt = net.send(5, 5, length=4)
        sim.run(until=10_000)
        assert pkt.delivered_cycle > 0

    def test_all_pairs_small_mesh(self):
        sim, net = make_fabric(3, 3)
        packets = [
            net.send(s, d, length=2)
            for s in range(9) for d in range(9) if s != d
        ]
        sim.run(until=100_000)
        assert len(net.delivered) == len(packets)
        for p in packets:
            assert p.delivered_cycle > p.injected_cycle


class TestWormholeProperties:
    def test_back_to_back_packets_all_arrive(self):
        """Multiple packets from one source may ride different VCs (and
        hence reorder), but all must arrive and the first-injected one
        cannot arrive last on an idle network."""
        sim, net = make_fabric()
        order = []
        net.on_delivery = lambda p: order.append(p.pid)
        pkts = [net.send(0, 15, length=4) for _ in range(6)]
        sim.run(until=100_000)
        assert sorted(order) == sorted(p.pid for p in pkts)
        # fair VC interleaving: the last arrival is not much later than
        # the first (all six worms progress concurrently)
        latencies = sorted(p.latency for p in pkts)
        assert latencies[-1] < latencies[0] + 6 * 4 + 10

    def test_contention_increases_latency(self):
        # many senders to one sink vs a single sender
        sim, net = make_fabric(4, 4)
        solo_sim, solo_net = make_fabric(4, 4)
        solo = solo_net.send(0, 5, length=8)
        solo_sim.run(until=10_000)
        crowd = [
            net.send(src, 5, length=8)
            for src in (0, 1, 2, 3, 4, 6, 8, 12)
        ]
        sim.run(until=100_000)
        assert max(p.latency for p in crowd) > solo.latency

    def test_heavy_load_no_flit_loss(self):
        sim, net = make_fabric(4, 4, vcs_per_port=2, flits_per_vc=2)
        import random
        rng = random.Random(7)
        packets = []
        for i in range(120):
            src = rng.randrange(16)
            dst = rng.randrange(16)
            sim.schedule(i * 3, lambda s=src, d=dst:
                         packets.append(net.send(s, d, rng.choice((1, 8)))))
        sim.run(until=500_000)
        assert len(net.delivered) == len(packets)


class TestValidationAgainstPacketModel:
    """The packet-level model should track the flit model at low load."""

    def test_zero_load_latency_within_factor(self):
        from repro.noc import Network
        cfg = NocConfig(width=8, height=8)
        # flit model
        fsim, fnet = make_fabric(8, 8)
        fp = fnet.send(0, 63, length=8)
        fsim.run(until=10_000)
        # packet model
        psim = Simulator()
        pnet = Network(psim, cfg)
        for n in range(64):
            pnet.register_endpoint(n, lambda p: None)
        pp = pnet.send(0, 63, "x", size_flits=8)
        psim.run()
        ratio = fp.latency / pp.latency
        assert 0.4 < ratio < 2.5, (fp.latency, pp.latency)
