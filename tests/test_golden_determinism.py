"""Golden determinism tests: pinned fingerprints of whole runs.

The hot-path optimizations (tuple event entries, precomputed routing,
allocation-free datapath, incremental flit-router bookkeeping) are only
acceptable if they are *bit-exact*: a run is a pure function of its
configuration and seed, and the optimized kernel must replay the seed
implementation event for event.

These tests pin md5 fingerprints over the delivered-packet stream —
``(src, dst, size_flits, delivery_cycle)`` in delivery order — plus the
final ROI cycle and the total event count of small fig12-shaped runs.
The constants were captured on the pre-optimization seed tree; any
change to event ordering, packet timing, or spurious/elided events
shifts at least one of them.
"""

import hashlib

import pytest

from repro.config import NocConfig
from repro.noc.flitsim import FlitNetwork
from repro.noc.network import Network
from repro.sim import Simulator, make_rng
from repro.system import run_benchmark

# (benchmark, mechanism) -> (md5, roi_cycles, packets_delivered, sim_events)
# captured at scale=0.25, seed=2018 on the seed implementation.
GOLDEN_RUNS = {
    ("bwaves", "original"):
        ("3ecc6ffd17133339622466b7d95149c4", 4184, 1155, 26426),
    ("bwaves", "inpg"):
        ("dd781b988e06c2e9c1a90bd54369a7b4", 4184, 1157, 26531),
    ("fluidanimate", "original"):
        ("7036a289d9c4c4d83336ef00d111df3b", 14186, 8868, 235289),
    ("fluidanimate", "inpg"):
        ("c5d897ec2a81a2d581fa4c2ed1f40252", 15155, 9019, 243517),
}

# protocol-family pins (same scheme as GOLDEN_RUNS): the table-compiled
# MSI/MESI variants are deterministic too, and deliberately *different*
# work than MOESI — a protocol switch that silently falls back to the
# default would reproduce the MOESI stream and trip these.
# MESI matches MSI on fig12 lock workloads by design: lock words are
# first touched by an atomic (GetX), so the clean-GetS exclusive grant
# never fires here; the storm pins below separate all three.
GOLDEN_PROTOCOL_RUNS = {
    ("msi", "bwaves", "original"):
        ("69f806569f180ebe090377e4f6b0de6b", 4069, 1158, 26821),
    ("msi", "bwaves", "inpg"):
        ("8f29e6bd5479ccf411e692f4a31f6d77", 4069, 1169, 27106),
    ("msi", "fluidanimate", "inpg"):
        ("5f03be31f94724130a22e7325800b3ca", 13336, 9679, 256064),
    ("mesi", "bwaves", "original"):
        ("69f806569f180ebe090377e4f6b0de6b", 4069, 1158, 26821),
    ("mesi", "bwaves", "inpg"):
        ("8f29e6bd5479ccf411e692f4a31f6d77", 4069, 1169, 27106),
    ("mesi", "fluidanimate", "inpg"):
        ("5f03be31f94724130a22e7325800b3ca", 13336, 9679, 256064),
}

# topology/arbiter-family pins (same scheme as GOLDEN_RUNS): the torus
# and ring fabrics and the WRR arbiter are deterministic and do
# *distinct* work from the mesh/rr default — a topology switch that
# silently routed as a mesh would reproduce the GOLDEN_RUNS stream and
# trip these.  Torus finishes earlier (wraparound halves the average
# hop count), the ring later (linear paths), and WRR keeps the mesh ROI
# while reordering grants under backlog.
GOLDEN_TOPOLOGY_RUNS = {
    ("torus", "bwaves", "original"):
        ("2ac0d827dd03cb25cb91c0f0ce3f5333", 3783, 1148, 21524),
    ("torus", "bwaves", "inpg"):
        ("e62240aa18ac27547983da3c94b78610", 3783, 1180, 22075),
    ("ring", "bwaves", "original"):
        ("d690402bf923cbd38cf2ddedaa52cdd2", 6623, 1042, 68884),
    ("ring", "bwaves", "inpg"):
        ("783b86917c297245bef488fe76f8afb5", 6623, 1047, 69633),
}

GOLDEN_ARBITER_RUNS = {
    ("wrr", "bwaves", "original"):
        ("d458b5e3988ce3589cd8d650d6cab0c1", 4184, 1155, 26426),
    ("wrr", "bwaves", "inpg"):
        ("30007f6d38a80ab61d4c20f30a5f96d6", 4184, 1157, 26535),
}

# dir_invalidation_storm per protocol (load-first rounds, so the MESI
# exclusive grant fires and all three streams diverge).
GOLDEN_PROTOCOL_STORM = {
    "moesi": ("713d4a11a63a27a4f2a38f8618fb46f7", 25328, 358137),
    "msi": ("4531e309efbe429890447a6afe3681ba", 28799, 316485),
    "mesi": ("4f5ddcda675cfb4c76f011da55ca0522", 28803, 316489),
}

# flit-level model: uniform-random traffic, seed 11 (the perf workload
# shape) -> (md5 over (src, dst, length, injected, delivered), events)
GOLDEN_FLIT = ("49e0dffdc473d86980de9a26886aa321", 63963, 1200)

# coherence-stress perf workloads (repro.perf.workloads) -> delivered-
# packet md5 (same scheme as GOLDEN_RUNS), final cycle, sim events.
# Captured when the workloads were introduced, alongside the bitmask/
# pool/dispatch fast path they exercise.
GOLDEN_PERF_WORKLOADS = {
    "dir_invalidation_storm":
        ("713d4a11a63a27a4f2a38f8618fb46f7", 25328, 358137),
    "lock_handoff_chain":
        ("efe80f80f6e2cb8497dbaa45aef24730", 61224, 893131),
}


def fingerprint_run(bench, mechanism, observe=None, **run_kwargs):
    """Run a small fig12-shaped simulation, hashing every delivery.

    ``run_kwargs`` pass through to :func:`run_benchmark` (the fault
    tests use this to fingerprint runs under fault plans / watchdogs).
    """
    digest = hashlib.md5()
    original_deliver = Network.deliver_local

    def recording_deliver(self, packet):
        digest.update(
            b"%d,%d,%d,%d;"
            % (packet.src, packet.dst, packet.size_flits, self.sim.cycle)
        )
        original_deliver(self, packet)

    Network.deliver_local = recording_deliver
    try:
        result = run_benchmark(
            bench, mechanism=mechanism, scale=0.25, seed=2018,
            observe=observe, **run_kwargs,
        )
    finally:
        Network.deliver_local = original_deliver
    return (
        digest.hexdigest(),
        result.roi_cycles,
        result.network_packets,
        int(result.extra["sim_events"]),
    )


class TestGoldenFig12:
    @pytest.mark.parametrize(
        "bench,mechanism", sorted(GOLDEN_RUNS), ids="/".join
    )
    def test_pinned_fingerprint(self, bench, mechanism):
        assert fingerprint_run(bench, mechanism) == \
            GOLDEN_RUNS[(bench, mechanism)]

    def test_back_to_back_runs_identical(self):
        """Same config + seed => identical fingerprint within a process
        (no hidden global state in the optimized fast paths)."""
        first = fingerprint_run("bwaves", "original")
        second = fingerprint_run("bwaves", "original")
        assert first == second

    @pytest.mark.parametrize(
        "bench,mechanism",
        [("bwaves", "original"), ("fluidanimate", "inpg")],
        ids="/".join,
    )
    def test_observed_run_is_bit_exact(self, bench, mechanism):
        """Wiring in full observability (counters + trace ring) must not
        perturb scheduling: the pinned fingerprints stay byte-identical."""
        from repro.obs import Observation

        observe = Observation(label="golden")
        assert fingerprint_run(bench, mechanism, observe=observe) == \
            GOLDEN_RUNS[(bench, mechanism)]
        assert observe.records(), "tracer captured no events"


def fingerprint_perf_workload(name, **workload_kwargs):
    """Run one coherence-stress perf workload, hashing every delivery.

    ``workload_kwargs`` pass through to the workload builder (the
    protocol-family tests use ``protocol=``).
    """
    from repro.perf.workloads import (
        run_dir_invalidation_storm,
        run_lock_handoff_chain,
    )

    builders = {
        "dir_invalidation_storm": run_dir_invalidation_storm,
        "lock_handoff_chain": run_lock_handoff_chain,
    }
    digest = hashlib.md5()
    original_deliver = Network.deliver_local

    def recording_deliver(self, packet):
        digest.update(
            b"%d,%d,%d,%d;"
            % (packet.src, packet.dst, packet.size_flits, self.sim.cycle)
        )
        original_deliver(self, packet)

    Network.deliver_local = recording_deliver
    try:
        first, _second = builders[name](**workload_kwargs)
    finally:
        Network.deliver_local = original_deliver
    sim = first if isinstance(first, Simulator) else first.sim
    return digest.hexdigest(), sim.cycle, sim.events_processed


class TestGoldenPerfWorkloads:
    """The tracked coherence-stress workloads are pinned work: their
    packet streams must stay bit-exact or events/sec comparisons lie."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_PERF_WORKLOADS))
    def test_pinned_fingerprint(self, name):
        assert fingerprint_perf_workload(name) == \
            GOLDEN_PERF_WORKLOADS[name]

    def test_back_to_back_storms_identical(self):
        """Per-run transaction ids: a second in-process run replays the
        first exactly (the old process-global counter only got away with
        it because txn ids never reach the wire)."""
        assert fingerprint_perf_workload("dir_invalidation_storm") == \
            fingerprint_perf_workload("dir_invalidation_storm")


class TestGoldenProtocolFamily:
    """The MSI/MESI sibling tables are deterministic, pinned, and do
    distinct work from the MOESI default."""

    @pytest.mark.parametrize(
        "protocol,bench,mechanism", sorted(GOLDEN_PROTOCOL_RUNS),
        ids="/".join,
    )
    def test_pinned_fingerprint(self, protocol, bench, mechanism):
        from dataclasses import replace

        from repro.config import SystemConfig

        config = replace(SystemConfig(), protocol=protocol)
        assert fingerprint_run(bench, mechanism, config=config) == \
            GOLDEN_PROTOCOL_RUNS[(protocol, bench, mechanism)]

    @pytest.mark.parametrize("protocol", sorted(GOLDEN_PROTOCOL_STORM))
    def test_pinned_storm_fingerprint(self, protocol):
        assert fingerprint_perf_workload(
            "dir_invalidation_storm", protocol=protocol
        ) == GOLDEN_PROTOCOL_STORM[protocol]

    def test_protocols_do_distinct_work(self):
        """MSI diverges from MOESI on the lock runs, and the storm's
        load-first rounds separate all three protocols pairwise."""
        assert GOLDEN_PROTOCOL_RUNS[("msi", "bwaves", "original")] != \
            GOLDEN_RUNS[("bwaves", "original")]
        storm_pins = set(GOLDEN_PROTOCOL_STORM.values())
        assert len(storm_pins) == len(GOLDEN_PROTOCOL_STORM)


class TestGoldenTopologyFamily:
    """Torus, ring and the WRR arbiter are deterministic, pinned, and do
    distinct work from the mesh/round-robin default."""

    @staticmethod
    def _config(**noc):
        from repro.config import SystemConfig

        return SystemConfig().with_overrides(noc=noc)

    @pytest.mark.parametrize(
        "topology,bench,mechanism", sorted(GOLDEN_TOPOLOGY_RUNS),
        ids="/".join,
    )
    def test_pinned_topology_fingerprint(self, topology, bench, mechanism):
        assert fingerprint_run(
            bench, mechanism, config=self._config(topology=topology)
        ) == GOLDEN_TOPOLOGY_RUNS[(topology, bench, mechanism)]

    @pytest.mark.parametrize(
        "arbiter,bench,mechanism", sorted(GOLDEN_ARBITER_RUNS), ids="/".join
    )
    def test_pinned_arbiter_fingerprint(self, arbiter, bench, mechanism):
        assert fingerprint_run(
            bench, mechanism, config=self._config(arbiter=arbiter)
        ) == GOLDEN_ARBITER_RUNS[(arbiter, bench, mechanism)]

    def test_fabrics_do_distinct_work(self):
        """Each topology's delivery stream is unique, and the WRR pins
        differ from round-robin's even where the ROI coincides."""
        md5s = {GOLDEN_RUNS[("bwaves", "original")][0]}
        for key in (("torus", "bwaves", "original"),
                    ("ring", "bwaves", "original")):
            md5s.add(GOLDEN_TOPOLOGY_RUNS[key][0])
        md5s.add(GOLDEN_ARBITER_RUNS[("wrr", "bwaves", "original")][0])
        assert len(md5s) == 4

    def test_torus_back_to_back_identical(self):
        """The dateline path and per-class shape caches hold no hidden
        cross-run state."""
        config = self._config(topology="torus")
        assert fingerprint_run("bwaves", "original", config=config) == \
            fingerprint_run("bwaves", "original", config=config)


class TestGoldenFlit:
    def test_pinned_flit_fingerprint(self):
        sim = Simulator()
        net = FlitNetwork(sim, NocConfig(width=8, height=8))
        rng = make_rng(11, "perf/flit")
        nodes = net.mesh.num_nodes
        for i in range(1200):
            src = rng.randrange(nodes)
            dst = rng.randrange(nodes)
            while dst == src:
                dst = rng.randrange(nodes)
            length = 8 if i % 4 == 0 else 1
            sim.schedule_at(i // 2, net.send, src, dst, length)
        sim.run(until=2_000_000)
        digest = hashlib.md5()
        for p in net.delivered:
            digest.update(
                b"%d,%d,%d,%d,%d;"
                % (p.src, p.dst, p.length, p.injected_cycle,
                   p.delivered_cycle)
            )
        assert (digest.hexdigest(), sim.events_processed,
                len(net.delivered)) == GOLDEN_FLIT


class TestFlitPacketParity:
    """The packet model's latency must stay within 2x of the detailed
    flit model (same shapes as ``benchmarks/bench_noc_validation.py``)."""

    @pytest.mark.parametrize(
        "src,dst,length", [(0, 63, 1), (0, 63, 8), (27, 36, 1)]
    )
    def test_zero_load_latency_agreement(self, src, dst, length):
        fsim = Simulator()
        fnet = FlitNetwork(fsim, NocConfig(width=8, height=8))
        fpkt = fnet.send(src, dst, length)
        fsim.run(until=100_000)

        psim = Simulator()
        pnet = Network(psim, NocConfig(width=8, height=8))
        for n in range(64):
            pnet.register_endpoint(n, lambda p: None)
        ppkt = pnet.send(src, dst, "x", size_flits=length)
        psim.run()

        assert fpkt.latency > 0 and ppkt.latency > 0
        ratio = ppkt.latency / fpkt.latency
        assert 0.5 <= ratio <= 2.0, (src, dst, length, fpkt.latency,
                                     ppkt.latency)
