"""Directional tests for iNPG's core mechanisms.

These pin the *mechanisms* (early invalidations happen, round trips
shorten, acks get pruned/relayed, correctness holds) rather than
end-to-end speedups, which depend on workload regime (see DESIGN.md §5).
"""

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload


def contended(mechanism, primitive="tas", threads=64):
    cfg = SystemConfig().with_mechanism(mechanism)
    wl = single_lock_workload(
        threads, home_node=53, cs_per_thread=2,
        cs_cycles=100, parallel_cycles=300,
    )
    return ManyCoreSystem(cfg, wl, primitive=primitive).run(
        max_cycles=60_000_000
    )


class TestMechanisms:
    def test_big_routers_generate_early_invalidations(self):
        r = contended("inpg")
        s = r.coherence
        assert s.getx_stopped > 100
        assert s.early_invs_generated == s.getx_stopped

    def test_early_round_trips_shorter_than_direct(self):
        r = contended("inpg")
        by_kind = r.coherence.mean_inv_rtt_by_kind()
        assert by_kind["early"] > 0
        assert by_kind["early"] < by_kind["normal"]

    def test_acks_pruned_or_used_at_winner(self):
        r = contended("inpg")
        s = r.coherence
        used = s.early_acks_consumed_before_txn + sum(
            t.early_acks_used for t in s.lock_txns
        )
        assert used > 0

    def test_mean_rtt_not_worse_under_inpg(self):
        base = contended("original")
        inpg = contended("inpg")
        assert inpg.coherence.mean_inv_rtt <= base.coherence.mean_inv_rtt * 1.1

    def test_same_work_completed(self):
        base = contended("original")
        inpg = contended("inpg")
        assert base.cs_completed == inpg.cs_completed == 128

    def test_roi_within_envelope(self):
        """iNPG must never catastrophically regress the baseline."""
        base = contended("original")
        inpg = contended("inpg")
        assert inpg.roi_cycles <= base.roi_cycles * 1.15


class TestBaselineRegime:
    def test_raw_spinning_baseline_is_lco_heavy(self):
        """With the paper's raw test_and_set spinning, LCO dominates the
        contended baseline (Figure 2's regime)."""
        r = contended("original")
        assert r.lco_fraction > 0.25

    def test_ttas_ablation_reduces_lco(self):
        from dataclasses import replace
        from repro.config import LockSpinConfig
        cfg_raw = SystemConfig()
        cfg_ttas = replace(cfg_raw, spin=LockSpinConfig(raw_spin=False))
        wl = single_lock_workload(64, home_node=53, cs_per_thread=2,
                                  cs_cycles=100, parallel_cycles=300)
        raw = ManyCoreSystem(cfg_raw, wl, primitive="tas").run(
            max_cycles=60_000_000
        )
        ttas = ManyCoreSystem(cfg_ttas, wl, primitive="tas").run(
            max_cycles=60_000_000
        )
        # the software fix removes a large share of lock txn traffic
        assert len(ttas.coherence.lock_txns) < len(raw.coherence.lock_txns)
