"""Regression tests for bugs found during development.

Each test pins a specific failure mode that once deadlocked or corrupted
the protocol; see the module docstrings referenced in DESIGN.md §5.
"""

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.coherence import L1State


def run_matrix_case(primitive, mechanism, threads=64, cs_per_thread=2):
    cfg = SystemConfig().with_mechanism(mechanism)
    wl = single_lock_workload(
        threads, home_node=53, cs_per_thread=cs_per_thread,
        cs_cycles=100, parallel_cycles=300,
    )
    system = ManyCoreSystem(cfg, wl, primitive=primitive)
    result = system.run(max_cycles=30_000_000)
    return system, result


class TestNoUntrackedCopies:
    """The deadlock family: a core holding a valid line the directory
    does not track never gets invalidated, so its line monitor never
    fires.  After a full contended run, every valid lock-line copy must
    be directory-tracked."""

    @pytest.mark.parametrize("mechanism", ["original", "inpg"])
    @pytest.mark.parametrize("primitive", ["tas", "ticket", "abql", "qsl"])
    def test_all_copies_tracked_after_run(self, primitive, mechanism):
        system, result = run_matrix_case(primitive, mechanism, threads=32,
                                         cs_per_thread=1)
        mem = system.memsys
        for lock in system.locks:
            addr = lock.addr
            home = mem.home_of(addr)
            ent = mem.dirs[home].entry(addr)
            for core in range(32):
                state = mem.l1s[core].state_of(addr)
                if state is L1State.SHARED:
                    assert core in ent.sharers, (primitive, mechanism, core)
                elif state.owns_data:
                    assert ent.owner == core, (primitive, mechanism, core)


class TestWinnerDemotesWhenSharing:
    """Answering forwarded losers must demote the winner M -> O, or its
    release commits silently while sharers hold copies (lost wakeup)."""

    def test_winner_not_modified_after_sharing(self):
        system, result = run_matrix_case("tas", "original", threads=16,
                                         cs_per_thread=1)
        # completed correctly despite heavy sharing
        assert result.cs_completed == 16


class TestStarvationFreeFailForwarding:
    """FwdFail requests that pile onto a pending write must be answered
    on *every* completion path (commit and fail), or forwarded losers
    starve."""

    @pytest.mark.parametrize("primitive", ["tas", "ticket", "mcs"])
    def test_heavy_contention_all_complete(self, primitive):
        system, result = run_matrix_case(primitive, "original")
        assert result.cs_completed == 128


class TestStaleEarlyInvDoesNotDestroyOwnership:
    """A late early-Inv must not kill a legitimately granted M line."""

    def test_inpg_heavy_contention_completes(self):
        system, result = run_matrix_case("mcs", "inpg")
        assert result.cs_completed == 128
        # all barrier-table EI entries drained
        for router in system.network.routers.values():
            if router.is_big:
                assert router.table.ei_in_use == 0
