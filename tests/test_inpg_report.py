"""Tests for the big-router activity report."""

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import NocConfig
from repro.inpg.report import BigRouterReport, collect_report


def run_inpg_system():
    cfg = SystemConfig(
        noc=NocConfig(width=4, height=4), num_threads=16
    ).with_mechanism("inpg")
    wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                              cs_cycles=60, parallel_cycles=150)
    system = ManyCoreSystem(cfg, wl, primitive="tas")
    system.run(max_cycles=20_000_000)
    return system


class TestReport:
    def test_collects_all_big_routers(self):
        system = run_inpg_system()
        report = collect_report(system)
        assert len(report.routers) == len(system.network.big_router_nodes())

    def test_totals_match_global_stats(self):
        system = run_inpg_system()
        report = collect_report(system)
        assert report.total_stopped == system.memsys.stats.getx_stopped
        assert report.total_barriers > 0

    def test_render_contains_summary(self):
        system = run_inpg_system()
        out = collect_report(system).render()
        assert "big routers" in out
        assert "GetX stopped" in out

    def test_hottest_sorted_descending(self):
        system = run_inpg_system()
        hottest = collect_report(system).hottest(3)
        stops = [r.getx_stopped for r in hottest]
        assert stops == sorted(stops, reverse=True)

    def test_baseline_has_no_big_routers(self):
        cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)
        wl = single_lock_workload(4, home_node=5, cs_per_thread=1)
        system = ManyCoreSystem(cfg, wl, primitive="mcs")
        system.run()
        report = collect_report(system)
        assert report.routers == []
        assert report.total_stopped == 0
