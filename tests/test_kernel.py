"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.sim import Event, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_cycle_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append(5))
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(3, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 3, 5]

    def test_same_cycle_fifo_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(7, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_same_cycle_fifo_across_fast_and_cancellable(self):
        """Fast tuple entries and cancellable Event entries scheduled for
        the same cycle still interleave in submission (seq) order."""
        sim = Simulator()
        fired = []
        sim.schedule(4, fired.append, "fast0")
        sim.schedule_cancellable(4, fired.append, "timer0")
        sim.schedule(4, fired.append, "fast1")
        sim.schedule_cancellable(4, fired.append, "timer1")
        sim.run()
        assert fired == ["fast0", "timer0", "fast1", "timer1"]

    def test_schedule_passes_args(self):
        sim = Simulator()
        got = []
        sim.schedule(2, lambda a, b, c: got.append((a, b, c)), 1, "x", None)
        sim.schedule(3, got.append, "bound")
        sim.run()
        assert got == [(1, "x", None), "bound"]

    def test_zero_delay_fires_same_cycle(self):
        sim = Simulator()
        seen = {}
        def outer():
            sim.schedule(0, lambda: seen.setdefault("inner", sim.cycle))
        sim.schedule(4, outer)
        sim.run()
        assert seen["inner"] == 4

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_cancellable(-1, lambda: None)

    def test_schedule_at_absolute_cycle(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(12, lambda: seen.append(sim.cycle))
        sim.run()
        assert seen == [12]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)


class TestExecution:
    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, lambda: fired.append("a"))
        sim.schedule(10, lambda: fired.append("b"))
        sim.run(until=5)
        assert fired == ["a"]
        assert sim.cycle == 5
        sim.run()
        assert fired == ["a", "b"]
        assert sim.cycle == 10

    def test_run_until_pushback_is_exact(self):
        """Pausing at ``until`` keeps the future event intact: resuming
        fires it at exactly its original cycle, FIFO order preserved."""
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append(("x", sim.cycle)))
        sim.schedule(100, lambda: fired.append(("y", sim.cycle)))
        for pause in (10, 50, 99):
            sim.run(until=pause)
            assert sim.cycle == pause
            assert fired == []
        sim.run()
        assert fired == [("x", 100), ("y", 100)]

    def test_run_until_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(2, lambda: None)
        sim.run(until=100)
        assert sim.cycle == 100

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        def stopper():
            fired.append("stop")
            sim.stop()
        sim.schedule(1, stopper)
        sim.schedule(2, lambda: fired.append("late"))
        sim.run()
        assert fired == ["stop"]

    def test_stop_halts_within_same_cycle_batch(self):
        sim = Simulator()
        fired = []
        def stopper():
            fired.append("stop")
            sim.stop()
        sim.schedule(3, stopper)
        sim.schedule(3, lambda: fired.append("same-cycle-later"))
        sim.run()
        assert fired == ["stop"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_max_events_bounds_run(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_cancellable(5, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancellable_fires_with_args(self):
        sim = Simulator()
        fired = []
        sim.schedule_cancellable(5, fired.append, "payload")
        sim.run()
        assert fired == ["payload"]

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_cancellable(1, fired.append, "once")
        sim.run()
        event.cancel()  # must not corrupt the corpse accounting
        assert fired == ["once"]
        assert sim.live_pending_events == 0
        assert sim.pending_events == 0

    def test_peek_next_cycle_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule_cancellable(1, lambda: None)
        sim.schedule(9, lambda: None)
        first.cancel()
        assert sim.peek_next_cycle() == 9

    def test_peek_empty_queue(self):
        sim = Simulator()
        assert sim.peek_next_cycle() is None

    def test_drain_returns_live_events(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        dead = sim.schedule_cancellable(2, lambda: None)
        dead.cancel()
        pending = sim.drain()
        assert len(pending) == 1
        assert sim.pending_events == 0
        assert sim.live_pending_events == 0

    def test_drain_preserves_args(self):
        sim = Simulator()
        got = []
        sim.schedule(3, got.append, "early")
        sim.schedule_cancellable(7, got.append, "late")
        pending = sim.drain()
        assert [cycle for cycle, _ in pending] == [3, 7]
        for _, fn in pending:
            fn()
        assert got == ["early", "late"]

    def test_live_pending_counts_only_live(self):
        """pending_events includes lazily-deleted corpses;
        live_pending_events does not."""
        sim = Simulator()
        events = [sim.schedule_cancellable(10, lambda: None)
                  for _ in range(8)]
        sim.schedule(10, lambda: None)
        for event in events[:3]:
            event.cancel()
        assert sim.pending_events == 9
        assert sim.live_pending_events == 6


class TestCompaction:
    def test_retry_storm_triggers_compaction(self):
        """Threshold-triggered compaction bounds corpse accumulation
        (the lock-retry-storm pathology: cancel + re-arm in a loop)."""
        sim = Simulator()
        storm = 10 * Simulator.COMPACT_MIN_CANCELLED
        for _ in range(storm):
            sim.schedule_cancellable(1000, lambda: None).cancel()
        assert sim.compactions >= 1
        # corpses never exceed ~threshold once live events are few
        assert sim.pending_events < 2 * Simulator.COMPACT_MIN_CANCELLED
        assert sim.live_pending_events == 0

    def test_compaction_preserves_order_and_liveness(self):
        sim = Simulator()
        fired = []
        sim.schedule(500, lambda: fired.append("fast"))
        keeper = sim.schedule_cancellable(400, fired.append, "keeper")
        for _ in range(5 * Simulator.COMPACT_MIN_CANCELLED):
            sim.schedule_cancellable(1000, lambda: None).cancel()
        assert sim.compactions >= 1
        assert keeper.cancelled is False
        sim.run()
        assert fired == ["keeper", "fast"]

    def test_cancel_during_compacted_state_is_safe(self):
        """Cancelling an event the compactor already reaped must not
        corrupt the corpse counter (no negative live counts)."""
        sim = Simulator()
        victims = [sim.schedule_cancellable(1000, lambda: None)
                   for _ in range(3 * Simulator.COMPACT_MIN_CANCELLED)]
        for event in victims:
            event.cancel()
        assert sim.compactions >= 1
        # double-cancel every victim after compaction reaped them
        for event in victims:
            event.cancel()
        assert sim.live_pending_events >= 0
        assert sim.live_pending_events == sim.pending_events - sim._cancelled
        sim.schedule(1, lambda: None)
        assert sim.run() == 1

    def test_compaction_inside_run_keeps_new_events_live(self):
        """Compaction triggered from *inside* an event callback (the
        barrier-TTL-cancel path during a lock-retry storm) must not
        strand events scheduled afterwards: run() iterates a local alias
        of the queue, so _compact() has to rebuild it in place."""
        sim = Simulator()
        fired = []
        victims = [sim.schedule_cancellable(1000, lambda: None)
                   for _ in range(3 * Simulator.COMPACT_MIN_CANCELLED)]

        def storm():
            for event in victims:
                event.cancel()
            assert sim.compactions >= 1
            sim.schedule(5, fired.append, "after-compaction")

        sim.schedule(1, storm)
        final = sim.run()
        assert fired == ["after-compaction"]
        assert final == 6
        assert sim._cancelled >= 0
        assert sim.live_pending_events == 0
        assert sim.pending_events == 0

    def test_cancellation_of_event_popped_by_peek(self):
        sim = Simulator()
        event = sim.schedule_cancellable(5, lambda: None)
        event.cancel()
        assert sim.peek_next_cycle() is None
        event.cancel()  # corpse already reaped by peek
        assert sim.live_pending_events == 0


class TestEventOrdering:
    def test_event_lt_by_cycle_then_seq(self):
        a = Event(1, 5, lambda: None)
        b = Event(2, 0, lambda: None)
        c = Event(1, 6, lambda: None)
        assert a < b
        assert a < c
        assert not (b < a)

    def test_nested_scheduling_maintains_order(self):
        sim = Simulator()
        order = []
        def chain(n):
            order.append(n)
            if n < 5:
                sim.schedule(1, lambda: chain(n + 1))
        sim.schedule(0, lambda: chain(0))
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]
        assert sim.cycle == 5
