"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.sim import Event, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_cycle_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append(5))
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(3, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 3, 5]

    def test_same_cycle_fifo_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(7, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_zero_delay_fires_same_cycle(self):
        sim = Simulator()
        seen = {}
        def outer():
            sim.schedule(0, lambda: seen.setdefault("inner", sim.cycle))
        sim.schedule(4, outer)
        sim.run()
        assert seen["inner"] == 4

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute_cycle(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(12, lambda: seen.append(sim.cycle))
        sim.run()
        assert seen == [12]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)


class TestExecution:
    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, lambda: fired.append("a"))
        sim.schedule(10, lambda: fired.append("b"))
        sim.run(until=5)
        assert fired == ["a"]
        assert sim.cycle == 5
        sim.run()
        assert fired == ["a", "b"]
        assert sim.cycle == 10

    def test_run_until_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(2, lambda: None)
        sim.run(until=100)
        assert sim.cycle == 100

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        def stopper():
            fired.append("stop")
            sim.stop()
        sim.schedule(1, stopper)
        sim.schedule(2, lambda: fired.append("late"))
        sim.run()
        assert fired == ["stop"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_max_events_bounds_run(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_peek_next_cycle_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1, lambda: None)
        sim.schedule(9, lambda: None)
        first.cancel()
        assert sim.peek_next_cycle() == 9

    def test_peek_empty_queue(self):
        sim = Simulator()
        assert sim.peek_next_cycle() is None

    def test_drain_returns_live_events(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        dead = sim.schedule(2, lambda: None)
        dead.cancel()
        pending = sim.drain()
        assert len(pending) == 1
        assert sim.pending_events == 0


class TestEventOrdering:
    def test_event_lt_by_cycle_then_seq(self):
        a = Event(1, 5, lambda: None)
        b = Event(2, 0, lambda: None)
        c = Event(1, 6, lambda: None)
        assert a < b
        assert a < c
        assert not (b < a)

    def test_nested_scheduling_maintains_order(self):
        sim = Simulator()
        order = []
        def chain(n):
            order.append(n)
            if n < 5:
                sim.schedule(1, lambda: chain(n + 1))
        sim.schedule(0, lambda: chain(0))
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]
        assert sim.cycle == 5
