"""Fairness characteristics of the lock primitives.

FIFO primitives (ticket, ABQL, MCS) hand the lock over in arrival order;
competitive primitives (TAS) favour whoever wins the coherence race.
These tests pin the *qualitative* fairness contract of each primitive.
"""

import pytest

from repro.config import NocConfig, SystemConfig
from repro.coherence import MemorySystem
from repro.cpu.os_model import OsModel
from repro.locks import AddressSpace, make_lock
from repro.noc import Network
from repro.sim import Simulator


def run_rounds(primitive, cores, rounds, cs_cycles=30):
    cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    osm = OsModel(sim, cfg.os, mem)
    lock = make_lock(primitive, sim, mem, AddressSpace(mem), 0, 5, cfg, osm)
    grants = []

    def go(core, remaining):
        lock.acquire(core, lambda: entered(core, remaining))

    def entered(core, remaining):
        grants.append(core)
        sim.schedule(cs_cycles, lambda: lock.release(
            core, lambda: go(core, remaining - 1) if remaining > 1 else None
        ))

    for core in cores:
        go(core, rounds)
    sim.run(until=30_000_000)
    return grants


@pytest.mark.parametrize("primitive", ["ticket", "abql", "mcs"])
class TestFifoPrimitives:
    def test_every_thread_progresses_each_round(self, primitive):
        cores = [0, 3, 7, 12]
        grants = run_rounds(primitive, cores, rounds=4)
        assert len(grants) == 16
        # FIFO: between two grants to the same core, every other waiting
        # core is granted at least once (no overtaking by more than one
        # full round)
        for core in cores:
            positions = [i for i, c in enumerate(grants) if c == core]
            assert len(positions) == 4
            for a, b in zip(positions, positions[1:]):
                assert b - a <= len(cores) + 1

    def test_acquisition_counts_balanced(self, primitive):
        cores = [0, 3, 7, 12]
        grants = run_rounds(primitive, cores, rounds=5)
        counts = {c: grants.count(c) for c in cores}
        assert all(v == 5 for v in counts.values())


class TestCompetitivePrimitives:
    def test_tas_completes_all_work_even_if_unfair(self):
        cores = [0, 3, 7, 12]
        grants = run_rounds("tas", cores, rounds=4)
        assert len(grants) == 16
        counts = {c: grants.count(c) for c in cores}
        assert all(v == 4 for v in counts.values())

    def test_qsl_completes_all_work(self):
        cores = [0, 3, 7, 12, 14]
        grants = run_rounds("qsl", cores, rounds=3)
        assert len(grants) == 15
