"""Behavioural tests for the five lock primitives.

Each primitive must provide mutual exclusion and progress when driven by
many concurrent threads over the real coherence substrate.
"""

import pytest

from repro.config import NocConfig, OsConfig, SystemConfig
from repro.coherence import MemorySystem
from repro.cpu.os_model import OsModel
from repro.locks import PRIMITIVES, AddressSpace, canonical_primitive, make_lock
from repro.locks.mcs import encode, is_locked, next_of
from repro.locks.ticket import next_ticket, now_serving, pack
from repro.noc import Network
from repro.sim import Simulator


def build(primitive, num_cores=16, width=4, height=4, home=5, **cfg_kw):
    cfg = SystemConfig(
        noc=NocConfig(width=width, height=height),
        num_threads=num_cores,
        **cfg_kw,
    )
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    os_model = OsModel(sim, cfg.os, mem)
    space = AddressSpace(mem)
    lock = make_lock(primitive, sim, mem, space, 0, home, cfg, os_model)
    return sim, mem, lock, os_model


class CSChecker:
    """Drives N cores through acquire/CS/release and checks exclusion."""

    def __init__(self, sim, lock, cores, cs_cycles=30, rounds=1):
        self.sim = sim
        self.lock = lock
        self.cs_cycles = cs_cycles
        self.inside = 0
        self.max_inside = 0
        self.completed = []
        self.order = []
        for core in cores:
            for _ in [0] * rounds:
                pass
        self._rounds = rounds
        for core in cores:
            self._acquire(core, rounds)

    def _acquire(self, core, rounds_left):
        self.lock.acquire(core, lambda: self._entered(core, rounds_left))

    def _entered(self, core, rounds_left):
        self.inside += 1
        self.max_inside = max(self.max_inside, self.inside)
        self.order.append(core)
        self.sim.schedule(self.cs_cycles, lambda: self._leave(core, rounds_left))

    def _leave(self, core, rounds_left):
        self.inside -= 1
        self.lock.release(core, lambda: self._released(core, rounds_left))

    def _released(self, core, rounds_left):
        if rounds_left > 1:
            self._acquire(core, rounds_left - 1)
        else:
            self.completed.append(core)


@pytest.mark.parametrize("primitive", PRIMITIVES)
class TestMutualExclusion:
    def test_single_thread_acquire_release(self, primitive):
        sim, mem, lock, _ = build(primitive)
        done = []
        lock.acquire(3, lambda: lock.release(3, lambda: done.append(True)))
        sim.run(until=1_000_000)
        assert done == [True]

    def test_two_threads_mutual_exclusion(self, primitive):
        sim, mem, lock, _ = build(primitive)
        checker = CSChecker(sim, lock, cores=[1, 2], cs_cycles=50)
        sim.run(until=2_000_000)
        assert sorted(checker.completed) == [1, 2]
        assert checker.max_inside == 1

    def test_many_threads_all_complete(self, primitive):
        sim, mem, lock, _ = build(primitive)
        cores = list(range(12))
        checker = CSChecker(sim, lock, cores=cores, cs_cycles=20)
        sim.run(until=5_000_000)
        assert sorted(checker.completed) == cores
        assert checker.max_inside == 1

    def test_repeated_rounds(self, primitive):
        sim, mem, lock, _ = build(primitive)
        cores = [0, 5, 10, 15]
        checker = CSChecker(sim, lock, cores=cores, cs_cycles=15, rounds=3)
        sim.run(until=5_000_000)
        assert sorted(checker.completed) == sorted(cores)
        assert len(checker.order) == len(cores) * 3


class TestFifoFairness:
    def test_ticket_grants_in_ticket_order(self):
        sim, mem, lock, _ = build("ticket")
        order = []
        tickets = {}
        def start(core):
            lock.acquire(core, lambda: entered(core))
        def entered(core):
            order.append(core)
            tickets[core] = lock._my_ticket[core]
            sim.schedule(10, lambda: lock.release(core, lambda: None))
        for core in (2, 7, 11):
            start(core)
        sim.run(until=2_000_000)
        assert len(order) == 3
        granted_tickets = [tickets[c] for c in order]
        assert granted_tickets == sorted(granted_tickets)

    def test_abql_slots_are_distinct(self):
        sim, mem, lock, _ = build("abql")
        slots = {}
        def start(core):
            lock.acquire(core, lambda: entered(core))
        def entered(core):
            slots[core] = lock._my_slot[core]
            sim.schedule(10, lambda: lock.release(core, lambda: None))
        for core in (1, 4, 9, 13):
            start(core)
        sim.run(until=2_000_000)
        assert len(set(slots.values())) == 4


class TestEncodings:
    def test_ticket_word_packing(self):
        word = pack(7, 3)
        assert next_ticket(word) == 7
        assert now_serving(word) == 3

    def test_ticket_serving_wraps_16_bits(self):
        word = pack(0xFFFF, 0xFFFF)
        assert next_ticket(word) == 0xFFFF
        assert now_serving(word) == 0xFFFF

    def test_mcs_qnode_encoding(self):
        word = encode(5, 1)
        assert next_of(word) == 4
        assert is_locked(word)
        word = encode(0, 0)
        assert next_of(word) == -1
        assert not is_locked(word)


class TestQslSleep:
    def test_contended_qsl_sleeps_and_recovers(self):
        # tiny spin budget forces the sleep path
        sim, mem, lock, os_model = build(
            "qsl", os=OsConfig(qsl_spin_retries=3,
                               context_switch_cycles=100,
                               wakeup_cycles=50),
        )
        checker = CSChecker(sim, lock, cores=list(range(8)), cs_cycles=200)
        sim.run(until=10_000_000)
        assert sorted(checker.completed) == list(range(8))
        assert os_model.sleeps > 0
        assert lock.acquired_after_sleep > 0

    def test_no_sleep_when_uncontended(self):
        sim, mem, lock, os_model = build("qsl")
        done = []
        lock.acquire(2, lambda: lock.release(2, lambda: done.append(1)))
        sim.run(until=1_000_000)
        assert done and os_model.sleeps == 0
        assert lock.acquired_spinning == 1


class TestFactory:
    def test_canonical_names_and_aliases(self):
        assert canonical_primitive("TTL") == "ticket"
        assert canonical_primitive("tas") == "tas"
        with pytest.raises(ValueError):
            canonical_primitive("bogus")

    def test_qsl_requires_os_model(self):
        cfg = SystemConfig(noc=NocConfig(width=2, height=2), num_threads=4)
        sim = Simulator()
        net = Network(sim, cfg.noc)
        mem = MemorySystem(sim, cfg, net)
        net.memsys = mem
        space = AddressSpace(mem)
        with pytest.raises(ValueError):
            make_lock("qsl", sim, mem, space, 0, 0, cfg, os_model=None)
