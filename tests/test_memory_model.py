"""Tests for the DRAM controller model."""

from repro.config import MemoryConfig, NocConfig
from repro.cpu.memory_model import (
    MemoryController,
    MemorySubsystem,
    controller_nodes,
)
from repro.sim import Simulator


class TestPlacement:
    def test_eight_controllers_on_8x8(self):
        noc = NocConfig(width=8, height=8)
        nodes = controller_nodes(noc, 8)
        assert len(nodes) == 8
        ys = {noc.coords(n)[1] for n in nodes}
        assert ys == {0, 7}  # top and bottom rows (Figure 3)

    def test_centred_placement(self):
        noc = NocConfig(width=8, height=8)
        nodes = controller_nodes(noc, 8)
        xs = sorted(noc.coords(n)[0] for n in nodes[:4])
        assert xs == [2, 3, 4, 5]  # middle of the row


class TestController:
    def test_access_pays_latency(self):
        sim = Simulator()
        mc = MemoryController(sim, node=0, latency=100)
        done = []
        mc.access(lambda: done.append(sim.cycle))
        sim.run()
        assert done == [100]

    def test_window_limits_concurrency(self):
        sim = Simulator()
        mc = MemoryController(sim, node=0, latency=100, max_outstanding=2)
        done = []
        for _ in range(4):
            mc.access(lambda: done.append(sim.cycle))
        sim.run()
        # two batches of two
        assert done == [100, 100, 200, 200]

    def test_request_counting(self):
        sim = Simulator()
        mc = MemoryController(sim, node=0, latency=10)
        for _ in range(5):
            mc.access(lambda: None)
        sim.run()
        assert mc.requests == 5
        assert mc.outstanding == 0


class TestSubsystem:
    def test_nearest_controller_routing(self):
        sim = Simulator()
        noc = NocConfig(width=8, height=8)
        sub = MemorySubsystem(sim, noc, MemoryConfig())
        # a node on the top row routes to a top-row controller
        top_mc = sub.nearest_controller(noc.node_at(3, 1))
        assert noc.coords(top_mc)[1] == 0
        bottom_mc = sub.nearest_controller(noc.node_at(3, 6))
        assert noc.coords(bottom_mc)[1] == 7

    def test_access_from_counts(self):
        sim = Simulator()
        noc = NocConfig(width=8, height=8)
        sub = MemorySubsystem(sim, noc, MemoryConfig())
        done = []
        sub.access_from(10, lambda: done.append(True))
        sim.run()
        assert done == [True]
        assert sub.total_requests == 1
