"""System-level conservation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import NocConfig


@st.composite
def run_params(draw):
    threads = draw(st.integers(min_value=2, max_value=16))
    primitive = draw(st.sampled_from(["tas", "ticket", "abql", "mcs", "qsl"]))
    mechanism = draw(st.sampled_from(["original", "inpg"]))
    cs = draw(st.integers(min_value=10, max_value=150))
    par = draw(st.integers(min_value=50, max_value=500))
    return threads, primitive, mechanism, cs, par


class TestConservation:
    @given(run_params())
    @settings(max_examples=20, deadline=None)
    def test_packet_accounting_balances(self, params):
        threads, primitive, mechanism, cs, par = params
        cfg = SystemConfig(
            noc=NocConfig(width=4, height=4), num_threads=16
        ).with_mechanism(mechanism)
        wl = single_lock_workload(
            threads, home_node=5, cs_per_thread=1,
            cs_cycles=cs, parallel_cycles=par,
        )
        system = ManyCoreSystem(cfg, wl, primitive=primitive)
        result = system.run(max_cycles=20_000_000)
        # drain any trailing coherence traffic
        system.sim.run(until=system.sim.cycle + 200_000)
        net = system.network
        assert net.in_flight == 0, (
            net.packets_injected, net.packets_delivered,
            net.packets_consumed,
        )
        assert result.cs_completed == threads

    @given(run_params())
    @settings(max_examples=12, deadline=None)
    def test_big_router_tables_drain(self, params):
        threads, primitive, _, cs, par = params
        cfg = SystemConfig(
            noc=NocConfig(width=4, height=4), num_threads=16
        ).with_mechanism("inpg")
        wl = single_lock_workload(
            threads, home_node=5, cs_per_thread=1,
            cs_cycles=cs, parallel_cycles=par,
        )
        system = ManyCoreSystem(cfg, wl, primitive=primitive)
        system.run(max_cycles=20_000_000)
        system.sim.run(until=system.sim.cycle + 200_000)
        for router in system.network.routers.values():
            if router.is_big:
                assert router.table.ei_in_use == 0
                assert router.acks_forwarded == router.getx_stopped
