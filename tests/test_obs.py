"""Tests for ``repro.obs``: registry, tracer, exporters, end-to-end wiring.

The expensive end-to-end checks share one observed small iNPG run via a
module-scoped fixture; the golden-determinism suite separately pins that
an observed run is *bit-exact* with an unobserved one.
"""

import json

import pytest

from repro import api
from repro.exec import Executor, RunSpec
from repro.exec.executor import execute_spec
from repro.obs import Observation
from repro.obs.export import (
    PID_BIG_ROUTERS,
    PID_CORES,
    PID_STRIDE,
    PID_SYSTEM,
    chrome_trace_events,
    contention_report,
    counters_report,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import Counter, Registry
from repro.obs.tracer import Tracer
from repro.sim import Simulator
from repro.stats.serialize import deserialize_run_result, serialize_run_result
from repro.system import run_benchmark

SMALL_RUN = dict(mechanism="inpg", primitive="qsl", scale=0.1, seed=2018)

#: event types the acceptance criteria require in an iNPG trace
REQUIRED_EVENTS = {"lock.handoff", "inpg.early_inv", "barrier.setup"}


@pytest.fixture(scope="module")
def observed_run():
    """One small observed iNPG run shared by the end-to-end tests."""
    observe = Observation(label="kdtree-small")
    result = run_benchmark("kdtree", observe=observe, **SMALL_RUN)
    return observe, result


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_create_and_fetch(self):
        reg = Registry()
        c = reg.counter("a/b")
        c.inc()
        c.add(4)
        assert int(c) == 5
        assert reg.counter("a/b") is c  # fetch, not recreate
        assert reg.read("a/b") == 5

    def test_gauge_reads_through(self):
        reg = Registry()
        state = {"n": 1}
        reg.gauge("g", lambda: state["n"])
        assert reg.read("g") == 1
        state["n"] = 7
        assert reg.read("g") == 7

    def test_gauges_prefix(self):
        reg = Registry()
        reg.gauges("noc", a=lambda: 1, b=lambda: 2)
        assert reg.read("noc/a") == 1 and reg.read("noc/b") == 2

    def test_duplicate_gauge_rejected(self):
        reg = Registry()
        reg.gauge("g", lambda: 0)
        with pytest.raises(ValueError):
            reg.gauge("g", lambda: 1)

    def test_counter_gauge_conflict(self):
        reg = Registry()
        reg.gauge("path", lambda: 0)
        with pytest.raises(ValueError):
            reg.counter("path")

    def test_snapshot_skips_raising_gauges(self):
        reg = Registry()
        reg.gauge("ok", lambda: 3)
        reg.gauge("broken", lambda: 1 / 0)
        assert reg.snapshot() == {"ok": 3.0}

    def test_subtree(self):
        reg = Registry()
        reg.gauges("noc", a=lambda: 1)
        reg.gauges("nocx", b=lambda: 2)
        reg.gauges("os", c=lambda: 3)
        assert reg.subtree("noc") == {"noc/a": 1.0}


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_emit_stamps_current_cycle(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.schedule(5, lambda: tracer.emit("core/0", "ev", x=1))
        sim.run()
        assert tracer.records() == [(5, "core/0", "ev", {"x": 1})]

    def test_ring_keeps_newest(self):
        tracer = Tracer(Simulator(), capacity=4)
        for i in range(10):
            tracer.emit("c", "e", i=i)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [r[3]["i"] for r in tracer.records()] == [6, 7, 8, 9]

    def test_records_filters(self):
        tracer = Tracer(Simulator())
        tracer.emit("lock/0", "lock.acquire", core=1)
        tracer.emit("lock/1", "lock.release", core=1)
        tracer.emit("core/1", "net.inject", dst=2)
        assert len(tracer.records(component="lock/0")) == 1
        assert len(tracer.records(event="lock.")) == 2
        assert tracer.records(component="core/1", event="net.inject") == \
            [(0, "core/1", "net.inject", {"dst": 2})]

    def test_payload_round_trip(self):
        tracer = Tracer(Simulator())
        tracer.emit("os", "os.sleep", core=3, lock=0)
        payload = tracer.to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert Tracer.records_from_payload(payload) == tracer.records()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestChromeExport:
    RECORDS = [
        (10, "core/5", "net.inject", {"dst": 2}),
        (20, "big/12", "inpg.early_inv", {"addr": 7}),
        (30, "lock/0", "lock.acquire", {"core": 5}),
    ]

    def test_track_mapping(self):
        events = chrome_trace_events(records=self.RECORDS)
        instants = [e for e in events if e["ph"] == "i"]
        by_name = {e["name"]: e for e in instants}
        assert by_name["net.inject"]["pid"] == PID_CORES
        assert by_name["net.inject"]["tid"] == 5
        assert by_name["inpg.early_inv"]["pid"] == PID_BIG_ROUTERS
        assert by_name["inpg.early_inv"]["tid"] == 12
        assert by_name["lock.acquire"]["pid"] == PID_SYSTEM
        # system tracks get a thread_name metadata record
        assert any(
            e["ph"] == "M" and e["name"] == "thread_name"
            and e["args"]["name"] == "lock/0"
            for e in events
        )

    def test_phase_intervals_become_slices(self):
        events = chrome_trace_events(
            intervals=[(3, "cse", 100, 250)], label="x"
        )
        slices = [e for e in events if e["ph"] == "X"]
        assert slices == [{
            "ph": "X", "name": "cse", "cat": "phase",
            "ts": 100, "dur": 150, "pid": PID_CORES, "tid": 3,
        }]

    def test_combined_runs_stride_pids(self):
        doc = to_chrome_trace([
            ("a", self.RECORDS, ()),
            ("b", self.RECORDS, ()),
        ])
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert PID_CORES in pids and PID_CORES + PID_STRIDE in pids

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        doc = write_chrome_trace(path, [("run", self.RECORDS, ())])
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["otherData"]["source"] == "repro.obs"


class TestReports:
    def test_contention_report_counts(self):
        records = [
            (0, "lock/0", "lock.acquire", {"core": 1}),
            (50, "lock/0", "lock.release", {"core": 1}),
            (60, "lock/0", "lock.handoff", {"gap": 10}),
            (60, "lock/0", "lock.acquire", {"core": 2}),
        ]
        report = contention_report(records)
        assert "lock/0" in report
        # 2 acquires, 1 handoff, mean hold 50.0, mean gap 10.0
        assert "2        1       50.0        50              10.0" in report

    def test_contention_report_empty(self):
        assert contention_report([]) == "no lock events in trace"

    def test_counters_report(self):
        text = counters_report({"a/b": 3.0, "c": 1.5})
        assert "a/b" in text and "1.5" in text and "3" in text
        assert counters_report({}) == "no counters registered"


# ----------------------------------------------------------------------
# End-to-end wiring
# ----------------------------------------------------------------------
class TestObservedRun:
    def test_required_events_present(self, observed_run):
        observe, _ = observed_run
        names = {r[2] for r in observe.records()}
        assert REQUIRED_EVENTS <= names

    def test_counters_wired(self, observed_run):
        observe, result = observed_run
        counters = observe.counters()
        assert counters["sim/events_processed"] > 0
        assert counters["noc/packets_delivered"] > 0
        assert counters["threads/done"] == 64
        # iNPG big routers registered under inpg/bigN
        big = {k for k in counters if k.startswith("inpg/big")}
        assert big and any(k.endswith("invs_generated") for k in big)
        # coherence counters live under the active protocol's namespace
        assert sum(
            counters[k] for k in big if k.endswith("invs_generated")
        ) == counters["coherence/moesi/early_invs_generated"]

    def test_payload_folded_into_result(self, observed_run):
        observe, result = observed_run
        assert result.obs is not None
        assert result.obs["label"] == "kdtree-small"
        assert result.obs["counters"] == observe.counters()
        assert result.extra["obs/sim/events_processed"] == \
            observe.counters()["sim/events_processed"]

    def test_serialize_round_trip_preserves_obs(self, observed_run):
        _, result = observed_run
        round_tripped = deserialize_run_result(
            json.loads(json.dumps(serialize_run_result(result)))
        )
        assert round_tripped.obs == result.obs

    def test_save_load_result(self, observed_run, tmp_path):
        _, result = observed_run
        path = tmp_path / "run.json"
        api.save_result(result, path)
        loaded = api.load_result(path)
        assert loaded.obs == result.obs
        assert loaded.roi_cycles == result.roi_cycles

    def test_chrome_trace_schema(self, observed_run, tmp_path):
        observe, _ = observed_run
        path = tmp_path / "t.json"
        observe.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert "pid" in event and "tid" in event
        assert REQUIRED_EVENTS <= {
            e["name"] for e in events if e["ph"] == "i"
        }
        # phase slices from the run timeline made it in
        assert any(e["ph"] == "X" for e in events)

    def test_contention_report_has_locks(self, observed_run):
        observe, _ = observed_run
        assert "lock/0" in observe.contention_report()

    def test_unobserved_run_has_no_obs(self):
        result = run_benchmark("kdtree", **SMALL_RUN)
        assert result.obs is None
        assert not any(k.startswith("obs/") for k in result.extra)

    def test_observed_matches_unobserved(self, observed_run):
        _, result = observed_run
        plain = run_benchmark("kdtree", **SMALL_RUN)
        assert plain.roi_cycles == result.roi_cycles
        assert plain.extra["sim_events"] == result.extra["sim_events"]


class TestApiTraceContext:
    def test_trace_writes_on_exit(self, tmp_path):
        path = tmp_path / "t.json"
        config = api.SystemConfig().with_mechanism("inpg")
        workload = api.generate_workload(
            "kdtree", num_threads=config.num_threads,
            mesh_nodes=config.noc.num_nodes, scale=0.1, seed=2018,
        )
        with api.trace(out=path, label="ctx") as obs:
            api.simulate(config, workload, "qsl", observe=obs)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert obs.attached and obs.result is not None

    def test_trace_unattached_writes_nothing(self, tmp_path):
        path = tmp_path / "t.json"
        with api.trace(out=path):
            pass
        assert not path.exists()


class TestExecutorObserved:
    def test_observe_factory_bypasses_cache(self, tmp_path):
        spec = RunSpec(benchmark="kdtree", **SMALL_RUN)
        executor = Executor(
            jobs=1, cache_dir=tmp_path,
            observe_factory=lambda s: Observation(label=s.label()),
        )
        results = executor.run([spec])
        observe = executor.observation_for(spec)
        assert observe is not None and observe.attached
        assert results[spec].obs is not None
        # nothing persisted: observed plans never touch the cache
        assert not list(tmp_path.rglob("*.json"))

    def test_run_plan_with_observe_factory(self):
        specs = [RunSpec(benchmark="kdtree", **SMALL_RUN)]
        results = api.run_plan(
            specs, cache=False,
            observe_factory=lambda s: Observation(label=s.label()),
        )
        assert results[0].obs is not None

    def test_execute_spec_observed_equals_cached_path(self, tmp_path):
        spec = RunSpec(benchmark="kdtree", **SMALL_RUN)
        observed = execute_spec(spec, observe=Observation())
        plain = Executor(jobs=1, cache_dir=tmp_path).run_one(spec)
        assert observed.roi_cycles == plain.roi_cycles


# ----------------------------------------------------------------------
# CLIs
# ----------------------------------------------------------------------
class TestCli:
    def test_inpg_sim_trace_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        code = main([
            "kdtree", "--mechanism", "inpg", "--scale", "0.1",
            "--no-cache", "--trace", "--trace-out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert REQUIRED_EVENTS <= {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "i"
        }
        assert "lock contention timeline" in capsys.readouterr().out

    def test_inpg_trace_cli(self, tmp_path, capsys):
        from repro.obs.cli import main

        out = tmp_path / "t.json"
        code = main([
            "kdtree", "--mechanism", "inpg", "--scale", "0.1",
            "--events", "-o", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert REQUIRED_EVENTS <= {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "i"
        }
        captured = capsys.readouterr().out
        assert "inpg.early_inv" in captured
        assert "lock contention timeline" in captured
