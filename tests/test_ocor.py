"""Unit tests for OCOR priority mapping and queue-spin-lock interaction."""

import pytest

from repro.config import OcorConfig
from repro.ocor import spin_priority, wakeup_priority


class TestPriorityMapping:
    def test_nearly_sleeping_gets_highest_priority(self):
        cfg = OcorConfig()
        assert spin_priority(0, cfg) == 8
        assert spin_priority(15, cfg) == 8

    def test_fresh_spinner_gets_lowest_spin_priority(self):
        cfg = OcorConfig()
        assert spin_priority(127, cfg) == 1
        assert spin_priority(112, cfg) == 1

    def test_each_level_spans_16_retries(self):
        """Table 1: 8 spinning levels, 16 retry times per level."""
        cfg = OcorConfig()
        levels = {spin_priority(rtr, cfg) for rtr in range(128)}
        assert levels == set(range(1, 9))
        for level in range(1, 9):
            count = sum(
                1 for rtr in range(128) if spin_priority(rtr, cfg) == level
            )
            assert count == 16

    def test_priority_monotonically_decreases_with_rtr(self):
        cfg = OcorConfig()
        priorities = [spin_priority(rtr, cfg) for rtr in range(128)]
        for a, b in zip(priorities, priorities[1:]):
            assert a >= b

    def test_wakeup_is_strictly_lowest(self):
        cfg = OcorConfig()
        wake = wakeup_priority(cfg)
        assert wake == 0
        assert all(spin_priority(r, cfg) > wake for r in range(128))

    def test_rtr_beyond_budget_clamps(self):
        cfg = OcorConfig()
        assert spin_priority(10_000, cfg) == 1

    def test_negative_rtr_rejected(self):
        with pytest.raises(ValueError):
            spin_priority(-1, OcorConfig())
