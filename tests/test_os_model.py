"""Unit tests for the OS sleep/wake model."""

from repro.config import NocConfig, OsConfig, SystemConfig
from repro.coherence import MemorySystem
from repro.cpu.os_model import OsModel
from repro.noc import Network
from repro.sim import Simulator


def make_os(wakeup_cycles=50):
    cfg = SystemConfig(
        noc=NocConfig(width=2, height=2),
        os=OsConfig(wakeup_cycles=wakeup_cycles),
    )
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    return sim, mem, OsModel(sim, cfg.os, mem)


class TestSleepWake:
    def test_release_wakes_oldest_sleeper(self):
        sim, mem, osm = make_os()
        lock_addr = mem.addr_for_home(0)
        mem.values[lock_addr] = 1  # lock held: sleepers stay parked
        woken = []
        osm.sleep(0, lock_addr, core=1, on_wake=lambda: woken.append(1))
        osm.sleep(0, lock_addr, core=2, on_wake=lambda: woken.append(2))
        sim.run()
        assert woken == []
        osm.notify_release(0)
        sim.run()
        assert woken == [1]
        osm.notify_release(0)
        sim.run()
        assert woken == [1, 2]

    def test_wakeup_latency_charged(self):
        sim, mem, osm = make_os(wakeup_cycles=77)
        lock_addr = mem.addr_for_home(0)
        mem.values[lock_addr] = 1
        woke_at = []
        osm.sleep(0, lock_addr, core=1, on_wake=lambda: woke_at.append(sim.cycle))
        osm.notify_release(0)
        sim.run()
        assert woke_at == [77]

    def test_lost_wakeup_guard_self_wakes(self):
        """Sleeping on an already-free lock must self-wake (no deadlock)."""
        sim, mem, osm = make_os()
        lock_addr = mem.addr_for_home(0)
        assert mem.read(lock_addr) == 0  # free
        woken = []
        osm.sleep(0, lock_addr, core=3, on_wake=lambda: woken.append(3))
        sim.run()
        assert woken == [3]
        assert osm.self_wakeups == 1

    def test_notify_with_no_sleepers_is_noop(self):
        sim, mem, osm = make_os()
        osm.notify_release(0)
        sim.run()
        assert osm.wakeups == 0

    def test_queues_are_per_lock(self):
        sim, mem, osm = make_os()
        a, b = mem.addr_for_home(0), mem.addr_for_home(1)
        mem.values[a] = 1
        mem.values[b] = 1
        woken = []
        osm.sleep(0, a, core=1, on_wake=lambda: woken.append("a"))
        osm.sleep(1, b, core=2, on_wake=lambda: woken.append("b"))
        osm.notify_release(1)
        sim.run()
        assert woken == ["b"]
        assert osm.sleeping_count(0) == 1
