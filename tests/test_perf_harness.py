"""Tests for the perf-bench report (bench-core/v2) and profiling harness.

The report file is committed data other sessions build on, so the things
tested here are contracts: v1 files migrate without losing either
baseline, baselines survive re-measurement verbatim, the regression gate
trips on rate drops and on pinned-work drift, and the profiler
attributes self time to the right simulator layer.
"""

import json

import pytest

from repro.perf.profiling import (
    LAYERS,
    PROFILE_SCHEMA,
    format_layer_table,
    layer_of,
    profile_workload,
    write_profile_report,
)
from repro.perf.report import (
    BENCH_SCHEMA,
    baseline_keys_chronological,
    check_against,
    format_speedup_table,
    load_report,
    write_report,
)
from repro.perf.workloads import (
    QUICK_WORKLOADS,
    WORKLOADS,
    WorkloadResult,
)


def _result(name, events=1000, wall_s=0.5, cycles=100):
    return WorkloadResult(
        name=name, wall_s=wall_s, events=events, cycles=cycles
    )


V1_REPORT = {
    "schema": "bench-core/v1",
    "baseline": {
        "label": "pre-optimization seed (PR 1)",
        "kernel_chain": {
            "wall_s": 1.0, "events": 1000, "cycles": 100,
            "events_per_sec": 1000.0,
        },
    },
    "workloads": {
        "kernel_chain": {
            "wall_s": 0.5, "events": 1000, "cycles": 100,
            "events_per_sec": 2000.0,
        },
    },
    "speedup": {"kernel_chain": 2.0},
}


class TestReportSchema:
    def test_load_migrates_v1_preserving_both_baselines(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(V1_REPORT))
        report = load_report(path)
        assert report["schema"] == BENCH_SCHEMA
        baselines = report["baselines"]
        assert baselines["seed"]["label"] == "pre-optimization seed (PR 1)"
        assert (
            baselines["seed"]["workloads"]["kernel_chain"]["events_per_sec"]
            == 1000.0
        )
        # the v1 committed numbers become a second baseline, not lost
        migrated = [k for k in baselines if k != "seed"]
        assert len(migrated) == 1
        assert (
            baselines[migrated[0]]["workloads"]["kernel_chain"]
            ["events_per_sec"] == 2000.0
        )

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "bench-core/v99"}))
        assert load_report(path) is None
        assert load_report(tmp_path / "absent.json") is None

    def test_first_write_seeds_baseline(self, tmp_path):
        path = tmp_path / "bench.json"
        report = write_report(
            {"kernel_chain": _result("kernel_chain")}, path,
            baseline_label="fresh",
        )
        assert report["schema"] == BENCH_SCHEMA
        assert report["baselines"]["seed"]["label"] == "fresh"
        assert report["speedup"]["kernel_chain"]["seed"] == 1.0

    def test_remeasure_keeps_baselines_verbatim(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report({"kernel_chain": _result("kernel_chain")}, path)
        before = load_report(path)["baselines"]
        write_report(
            {"kernel_chain": _result("kernel_chain", wall_s=0.25)}, path
        )
        after = load_report(path)
        assert after["baselines"] == before
        assert after["speedup"]["kernel_chain"]["seed"] == 2.0

    def test_snapshot_baseline_freezes_committed_numbers(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report({"kernel_chain": _result("kernel_chain")}, path)
        write_report(
            {"kernel_chain": _result("kernel_chain", wall_s=0.1)}, path,
            snapshot_baseline="pr-n", baseline_label="previous PR",
        )
        report = load_report(path)
        assert (
            report["baselines"]["pr-n"]["workloads"]["kernel_chain"]
            ["events_per_sec"] == 2000.0
        )
        assert report["speedup"]["kernel_chain"]["pr-n"] == 5.0

    def test_snapshots_get_increasing_order(self, tmp_path):
        """Baselines record their chronology explicitly: the seed is
        order 0 and every snapshot takes the next slot, so rendering
        never depends on (alphabetical) JSON key order."""
        path = tmp_path / "bench.json"
        write_report({"kernel_chain": _result("kernel_chain")}, path)
        write_report(
            {"kernel_chain": _result("kernel_chain", wall_s=0.25)}, path,
            snapshot_baseline="zz-first",
        )
        write_report(
            {"kernel_chain": _result("kernel_chain", wall_s=0.1)}, path,
            snapshot_baseline="aa-second",
        )
        report = load_report(path)
        assert report["baselines"]["seed"]["order"] == 0
        assert report["baselines"]["zz-first"]["order"] == 1
        assert report["baselines"]["aa-second"]["order"] == 2
        # chronological, not alphabetical
        assert baseline_keys_chronological(report["baselines"]) == [
            "seed", "zz-first", "aa-second",
        ]

    def test_speedup_table_labels_comparison_baseline(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report({"kernel_chain": _result("kernel_chain")}, path)
        write_report(
            {"kernel_chain": _result("kernel_chain", wall_s=0.25)}, path,
            snapshot_baseline="pr-n",
        )
        table = format_speedup_table(load_report(path))
        header = table.splitlines()[0]
        # columns oldest-first, newest explicitly marked as the
        # comparison the current PR is judged against
        assert header.index("vs seed") < header.index("vs pr-n")
        assert "vs pr-n (comparison)" in header
        assert "kernel_chain" in table and "2.00x" in table

    def test_committed_file_is_current_schema(self):
        """The repo's own BENCH_core.json must parse as v2 and keep both
        historical baselines."""
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        report = load_report(path)
        assert report is not None and report["schema"] == BENCH_SCHEMA
        assert "seed" in report["baselines"]
        assert len(report["baselines"]) >= 2
        for name in ("dir_invalidation_storm", "lock_handoff_chain",
                     "flit_vector_uniform", "flit_big_mesh"):
            assert name in report["workloads"]
        # chronology is explicit: every committed baseline is ordered
        # and the seed is oldest
        assert all("order" in b for b in report["baselines"].values())
        assert baseline_keys_chronological(report["baselines"])[0] == "seed"


class TestRegressionGate:
    COMMITTED = {
        "schema": BENCH_SCHEMA,
        "workloads": {
            "kernel_chain": {
                "wall_s": 0.5, "events": 1000, "cycles": 100,
                "events_per_sec": 2000.0,
            },
        },
    }

    def test_passes_within_tolerance(self):
        results = {"kernel_chain": _result("kernel_chain", wall_s=0.6)}
        assert check_against(results, self.COMMITTED) == []

    def test_fails_on_rate_collapse(self):
        results = {"kernel_chain": _result("kernel_chain", wall_s=2.0)}
        failures = check_against(results, self.COMMITTED)
        assert len(failures) == 1 and "below the committed" in failures[0]

    def test_fails_on_pinned_work_drift(self):
        results = {
            "kernel_chain": _result("kernel_chain", events=999, wall_s=0.5)
        }
        failures = check_against(results, self.COMMITTED)
        assert any("pinned" in f for f in failures)

    def test_unknown_workload_is_not_gated(self):
        results = {"brand_new": _result("brand_new")}
        assert check_against(results, self.COMMITTED) == []

    def test_quick_subset_covers_coherence(self):
        """CI's --quick gate must include a coherence-stress workload."""
        assert "dir_invalidation_storm" in QUICK_WORKLOADS
        assert set(QUICK_WORKLOADS) <= set(WORKLOADS)


class TestLayerAttribution:
    @pytest.mark.parametrize(
        "path,layer",
        [
            ("/x/src/repro/sim/kernel.py", "kernel"),
            ("/x/src/repro/noc/router.py", "noc"),
            ("/x/src/repro/noc/packet.py", "noc"),
            ("/x/src/repro/noc/flitsim.py", "noc-flit"),
            ("/x/src/repro/noc/vecflit.py", "noc-flit"),
            ("/x/src/repro/noc/flit_fabric.py", "noc-flit"),
            ("/x/src/repro/coherence/directory.py", "coherence"),
            ("/x/src/repro/inpg/big_router.py", "coherence"),
            ("/x/src/repro/cpu/thread.py", "cpu"),
            ("/x/src/repro/locks/qsl.py", "cpu"),
            ("/x/src/repro/workloads/generator.py", "cpu"),
            ("/x/src/repro/obs/registry.py", "obs"),
            ("/x/src/repro/stats/metrics.py", "obs"),
            ("/usr/lib/python3.11/heapq.py", "other"),
            ("~", "other"),
        ],
    )
    def test_layer_of(self, path, layer):
        assert layer_of(path) == layer

    def test_profile_report_shape(self, tmp_path, monkeypatch):
        """Profile a miniature kernel workload end to end: shares sum to
        ~1, every layer is listed, hotspots carry locations."""
        from repro.perf import workloads as wl

        def tiny():
            return wl.kernel_chain(total_events=5_000, chains=8)

        monkeypatch.setitem(WORKLOADS, "tiny_kernel", tiny)
        entry = profile_workload("tiny_kernel")
        assert entry["events"] >= 5_000
        assert set(entry["layers"]) == set(LAYERS)
        total_share = sum(
            layer["share"] for layer in entry["layers"].values()
        )
        assert total_share == pytest.approx(1.0, abs=0.01)
        assert entry["layers"]["kernel"]["share"] > 0
        assert entry["hotspots"], "no hotspots recorded"
        top = entry["hotspots"][0]
        assert top["file"] and top["tottime_s"] >= 0

        report = {
            "schema": PROFILE_SCHEMA,
            "top_n": 15,
            "workloads": {"tiny_kernel": entry},
        }
        out = tmp_path / "profile.json"
        write_profile_report(report, out)
        assert json.loads(out.read_text())["schema"] == PROFILE_SCHEMA
        table = format_layer_table(report)
        assert "tiny_kernel" in table
        for layer in LAYERS:
            assert layer in table

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            profile_workload("no_such_workload")
