"""Property tests for output-port arbitration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import OutputPort, Packet
from repro.sim import Simulator

request = st.tuples(
    st.integers(min_value=0, max_value=20),   # issue delay
    st.integers(min_value=1, max_value=8),    # size flits
    st.integers(min_value=0, max_value=9),    # priority
    st.integers(min_value=0, max_value=1),    # vnet
)


class TestPortProperties:
    @given(st.lists(request, min_size=1, max_size=30),
           st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_every_request_granted_exactly_once(self, reqs, priority_aware):
        sim = Simulator()
        port = OutputPort(sim, "p", priority_aware=priority_aware)
        granted = []
        for i, (delay, size, prio, vnet) in enumerate(reqs):
            pkt = Packet(src=0, dst=1, payload=i, size_flits=size,
                         priority=prio, vnet=vnet)
            sim.schedule(
                delay, lambda p=pkt: port.request(
                    p, lambda q: granted.append(q.payload)
                )
            )
        sim.run()
        assert sorted(granted) == list(range(len(reqs)))
        assert not port.busy
        assert port.queue_depth == 0
        assert port.packets_sent == len(reqs)

    @given(st.lists(request, min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_grants_respect_serialization_spacing(self, reqs):
        """Consecutive grants are separated by at least the previous
        packet's flit count (the port transmits one flit per cycle)."""
        sim = Simulator()
        port = OutputPort(sim, "p")
        grants = []  # (cycle, size)
        for i, (delay, size, prio, vnet) in enumerate(reqs):
            pkt = Packet(src=0, dst=1, payload=size, size_flits=size)
            sim.schedule(
                delay, lambda p=pkt: port.request(
                    p, lambda q: grants.append((sim.cycle, q.payload))
                )
            )
        sim.run()
        for (t1, size1), (t2, _size2) in zip(grants, grants[1:]):
            assert t2 - t1 >= min(size1, t2 - t1), (grants,)
        # stronger: back-to-back grants spaced >= size of the earlier one
        # whenever the later request was already pending
        total_busy = sum(s for _, s in grants)
        assert grants[-1][0] >= grants[0][0]
        assert port.flits_sent == total_busy

    @given(st.lists(request, min_size=3, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_control_vnet_never_waits_behind_queued_data(self, reqs):
        """Among packets queued at the same time, vnet 0 wins."""
        sim = Simulator()
        port = OutputPort(sim, "p", priority_aware=True)
        order = []
        # one blocking packet, then everything queued at cycle 0
        port.request(
            Packet(src=0, dst=1, payload="head", size_flits=8),
            lambda p: order.append(("head", 0)),
        )
        for i, (_, size, prio, vnet) in enumerate(reqs):
            pkt = Packet(src=0, dst=1, payload=i, size_flits=size,
                         priority=prio, vnet=vnet)
            port.request(pkt, lambda p=pkt: order.append((p.payload, p.vnet)))
        sim.run()
        vnets = [v for payload, v in order if payload != "head"]
        # all control packets precede all data packets
        first_data = next((i for i, v in enumerate(vnets) if v == 1),
                          len(vnets))
        assert all(v == 1 for v in vnets[first_data:])
