"""Unit tests for output ports, routers, and the network fabric."""

import pytest

from repro.config import NocConfig
from repro.noc import Network, OutputPort, Packet, Router
from repro.sim import Simulator


def make_network(width=4, height=4, priority=False, record_traces=False):
    sim = Simulator()
    net = Network(sim, NocConfig(width=width, height=height),
                  priority_arbitration=priority,
                  record_traces=record_traces)
    return sim, net


class TestOutputPort:
    def test_cut_through_head_and_serialization(self):
        """Wormhole semantics: the head proceeds after one cycle; the
        port stays busy for the full flit serialization before granting
        the next packet."""
        sim = Simulator()
        port = OutputPort(sim, "p")
        done = []
        first = Packet(src=0, dst=1, payload="x", size_flits=8)
        second = Packet(src=0, dst=1, payload="y", size_flits=1)
        port.request(first, lambda p: done.append(("first", sim.cycle)))
        port.request(second, lambda p: done.append(("second", sim.cycle)))
        sim.run()
        assert done[0] == ("first", 1)     # head after 1 cycle
        assert done[1] == ("second", 9)    # blocked 8 cycles + 1

    def test_fifo_order_without_priority(self):
        sim = Simulator()
        port = OutputPort(sim, "p")
        order = []
        for i in range(3):
            pkt = Packet(src=0, dst=1, payload=i, size_flits=2)
            port.request(pkt, lambda p: order.append(p.payload))
        sim.run()
        assert order == [0, 1, 2]

    def test_priority_arbitration(self):
        sim = Simulator()
        port = OutputPort(sim, "p", priority_aware=True)
        order = []
        # first packet grabs the port; among the queued ones the
        # high-priority packet must win even though it was queued last.
        port.request(Packet(src=0, dst=1, payload="head", size_flits=4),
                     lambda p: order.append(p.payload))
        port.request(Packet(src=0, dst=1, payload="low", priority=1),
                     lambda p: order.append(p.payload))
        port.request(Packet(src=0, dst=1, payload="high", priority=7),
                     lambda p: order.append(p.payload))
        sim.run()
        assert order == ["head", "high", "low"]

    def test_priority_ignored_when_not_priority_aware(self):
        sim = Simulator()
        port = OutputPort(sim, "p", priority_aware=False)
        order = []
        port.request(Packet(src=0, dst=1, payload="head", size_flits=4),
                     lambda p: order.append(p.payload))
        port.request(Packet(src=0, dst=1, payload="first", priority=0),
                     lambda p: order.append(p.payload))
        port.request(Packet(src=0, dst=1, payload="second", priority=9),
                     lambda p: order.append(p.payload))
        sim.run()
        assert order == ["head", "first", "second"]

    def test_wait_statistics(self):
        sim = Simulator()
        port = OutputPort(sim, "p")
        port.request(Packet(src=0, dst=1, payload=0, size_flits=10),
                     lambda p: None)
        port.request(Packet(src=0, dst=1, payload=1, size_flits=1),
                     lambda p: None)
        sim.run()
        assert port.packets_sent == 2
        assert port.flits_sent == 11
        assert port.total_wait_cycles == 10  # second waited for the first


class TestNetworkDelivery:
    def test_packet_reaches_destination(self):
        sim, net = make_network()
        got = []
        for n in range(16):
            net.register_endpoint(n, lambda p, n=n: got.append((n, p.payload)))
        net.send(0, 15, "hello")
        sim.run()
        assert got == [(15, "hello")]

    def test_latency_scales_with_distance(self):
        sim, net = make_network(8, 8)
        for n in range(64):
            net.register_endpoint(n, lambda p: None)
        near = net.send(0, 1, "near")
        far = net.send(0, 63, "far")
        sim.run()
        assert near.latency > 0
        assert far.latency > near.latency
        # 14 hops of (2-cycle pipeline + 1-cycle link) + ejection
        assert far.latency >= 14 * 3

    def test_local_delivery(self):
        sim, net = make_network()
        got = []
        net.register_endpoint(5, lambda p: got.append(p.payload))
        for n in range(16):
            if n != 5:
                net.register_endpoint(n, lambda p: None)
        net.send(5, 5, "self")
        sim.run()
        assert got == ["self"]

    def test_trace_records_xy_path(self):
        sim, net = make_network(4, 4, record_traces=True)
        for n in range(16):
            net.register_endpoint(n, lambda p: None)
        pkt = net.send(0, 10, "x")
        sim.run()
        assert pkt.trace == net.mesh.xy_route(0, 10)
        assert pkt.hops == len(pkt.trace)

    def test_hops_counted_without_tracing(self):
        """Tracing is off by default but hop counts are always kept."""
        sim, net = make_network(4, 4)
        for n in range(16):
            net.register_endpoint(n, lambda p: None)
        pkt = net.send(0, 10, "x")
        sim.run()
        assert pkt.trace == []
        assert pkt.hops == len(net.mesh.xy_route(0, 10))
        assert net.total_hops == pkt.hops - 1

    def test_duplicate_endpoint_rejected(self):
        sim, net = make_network()
        net.register_endpoint(0, lambda p: None)
        with pytest.raises(ValueError):
            net.register_endpoint(0, lambda p: None)

    def test_missing_endpoint_raises(self):
        sim, net = make_network()
        net.send(0, 3, "x")
        with pytest.raises(RuntimeError):
            sim.run()

    def test_network_statistics(self):
        sim, net = make_network()
        for n in range(16):
            net.register_endpoint(n, lambda p: None)
        net.send(0, 3, "a")
        net.send(1, 2, "b")
        sim.run()
        assert net.packets_injected == 2
        assert net.packets_delivered == 2
        assert net.in_flight == 0
        assert net.mean_latency > 0

    def test_contention_increases_latency(self):
        """Many packets to one node must queue at its ejection port."""
        sim, net = make_network(4, 4)
        for n in range(16):
            net.register_endpoint(n, lambda p: None)
        solo_sim, solo_net = make_network(4, 4)
        for n in range(16):
            solo_net.register_endpoint(n, lambda p: None)
        solo = solo_net.send(0, 5, "solo", size_flits=8)
        solo_sim.run()
        packets = [
            net.send(src, 5, f"p{src}", size_flits=8)
            for src in (0, 1, 2, 3, 4, 6, 8, 12)
        ]
        sim.run()
        worst = max(p.latency for p in packets)
        assert worst > solo.latency
