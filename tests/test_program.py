"""Tests for the program DSL and in-order program core."""

import pytest

from repro.config import NocConfig, SystemConfig
from repro.coherence import MemorySystem
from repro.cpu.os_model import OsModel
from repro.cpu.program import (
    Program,
    ProgramCore,
    acquire,
    load,
    release,
    repeat,
    rmw,
    store,
    think,
)
from repro.locks import AddressSpace, make_lock
from repro.noc import Network
from repro.sim import Simulator


def build_env(num_locks=1):
    cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    osm = OsModel(sim, cfg.os, mem)
    space = AddressSpace(mem)
    locks = [
        make_lock("mcs", sim, mem, space, i, 5 + i, cfg, osm)
        for i in range(num_locks)
    ]
    return sim, mem, locks


class TestDsl:
    def test_repeat_unrolls(self):
        prog = Program([repeat(3, [think(1), think(2)])])
        assert len(prog) == 6

    def test_nested_lists_flatten(self):
        prog = Program([think(1), [think(2), [think(3)]]])
        assert len(prog) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            think(-1)
        with pytest.raises(ValueError):
            repeat(-1, [think(1)])


class TestExecution:
    def test_think_timing(self):
        sim, mem, locks = build_env()
        core = ProgramCore(sim, 0, Program([think(10), think(5)]), mem)
        core.start()
        sim.run()
        assert core.done
        assert [t for t, _ in core.retired] == [10, 15]

    def test_load_store_roundtrip(self):
        sim, mem, locks = build_env()
        addr = mem.addr_for_home(3)
        prog = Program([store(addr, 99), load(addr)])
        core = ProgramCore(sim, 0, prog, mem)
        core.start()
        sim.run()
        assert core.done
        assert core.last_value == 99

    def test_rmw_returns_old_value(self):
        sim, mem, locks = build_env()
        addr = mem.addr_for_home(3)
        prog = Program([
            store(addr, 5),
            rmw(addr, lambda old: (old * 2, old)),
            load(addr),
        ])
        core = ProgramCore(sim, 0, prog, mem)
        core.start()
        sim.run()
        assert core.last_value == 10

    def test_lock_protected_counter(self):
        """The canonical example: N cores incrementing a shared counter
        under a lock never lose an update."""
        sim, mem, locks = build_env()
        counter = mem.addr_for_home(9)
        done = []
        cores = []
        for c in range(8):
            prog = Program([
                repeat(3, [
                    think(20),
                    acquire(0),
                    rmw(counter, lambda old: (old + 1, old)),
                    release(0),
                ]),
            ])
            core = ProgramCore(sim, c, prog, mem, locks,
                               on_done=done.append)
            cores.append(core)
            core.start()
        sim.run(until=5_000_000)
        assert sorted(done) == list(range(8))
        assert mem.read(counter) == 24

    def test_retirement_order_is_program_order(self):
        sim, mem, locks = build_env()
        addr = mem.addr_for_home(3)
        prog = Program([think(5), load(addr), store(addr, 1), think(1)])
        core = ProgramCore(sim, 0, prog, mem)
        core.start()
        sim.run()
        ops = [op for _, op in core.retired]
        assert ops == ["think", "load", "store", "think"]
        times = [t for t, _ in core.retired]
        assert times == sorted(times)
