"""Tests for the declarative protocol tables and their compiler.

Covers the table layer the golden fingerprints cannot see: table
exhaustiveness (the lint), permissions derived from table metadata
rather than hard-coded MOESI properties, the attach-time lowering onto
the tag-indexed dispatch fast path, per-variant semantics (the MESI
exclusive grant and silent upgrade), the table-validating checker's
structured violations, and that the bitmask/message-pool fast paths
stay active under every variant.
"""

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import NocConfig, PROTOCOL_NAMES
from repro.coherence import L1State, MemorySystem
from repro.coherence.checker import ProtocolChecker, ProtocolViolation
from repro.coherence.directory import _HANDLER_NAMES as DIR_HANDLER_NAMES
from repro.coherence.l1cache import _HANDLER_NAMES as L1_HANDLER_NAMES
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.coherence.protocol import (
    DIR_MESSAGE_EVENTS,
    L1_MESSAGE_EVENTS,
    LOAD,
    MESI,
    MOESI,
    MSI,
    PROTOCOLS,
    ProtocolSpec,
    UNHANDLED,
    get_protocol,
    lint_protocol,
)
from repro.noc import Network
from repro.sim import Simulator

I, S, E, O, M = (L1State.INVALID, L1State.SHARED, L1State.EXCLUSIVE,
                 L1State.OWNED, L1State.MODIFIED)


def make_system(**cfg_kw):
    cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16,
                       **cfg_kw)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    return sim, mem


# ----------------------------------------------------------------------
# Exhaustiveness lint
# ----------------------------------------------------------------------
class TestLint:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_shipped_tables_are_well_formed(self, name):
        assert lint_protocol(PROTOCOLS[name]) == []

    def test_registry_matches_config_axis(self):
        assert set(PROTOCOLS) == set(PROTOCOL_NAMES)
        for name, spec in PROTOCOLS.items():
            assert get_protocol(name) is spec
            assert get_protocol(name.upper()) is spec
        with pytest.raises(ValueError):
            get_protocol("mosi")

    def test_missing_pair_rejected_at_definition(self):
        l1 = dict(MSI.l1_table)
        del l1[(S, LOAD)]
        with pytest.raises(ValueError, match=r"\(S, Load\) missing"):
            ProtocolSpec("broken", MSI.l1_states, l1, MSI.dir_table)

    def test_unknown_action_rejected(self):
        l1 = dict(MSI.l1_table)
        entry = l1[(S, LOAD)]
        l1[(S, LOAD)] = type(entry)(entry.next_state, "warp_core_breach")
        with pytest.raises(ValueError, match="unknown action"):
            ProtocolSpec("broken", MSI.l1_states, l1, MSI.dir_table)

    def test_result_state_outside_protocol_rejected(self):
        l1 = dict(MSI.l1_table)
        entry = l1[(S, LOAD)]
        l1[(S, LOAD)] = type(entry)(O, entry.action)
        with pytest.raises(ValueError, match="result state O"):
            ProtocolSpec("broken", MSI.l1_states, l1, MSI.dir_table)

    def test_declared_impossible_pairs_are_explicit(self):
        """UNHANDLED is a real entry, not a missing key: the one-shot
        ack-collection messages must never land on a Modified line."""
        for spec in PROTOCOLS.values():
            assert spec.l1_entry(M, MessageType.DATA_EXCL) is UNHANDLED
            assert spec.l1_entry(M, MessageType.ACK_COUNT) is UNHANDLED
            assert spec.l1_entry(I, "Evict") is UNHANDLED


# ----------------------------------------------------------------------
# Derived metadata (permissions come from the table, not the Enum)
# ----------------------------------------------------------------------
class TestDerivedPermissions:
    def test_moesi_matches_the_enum_convenience_view(self):
        for st in MOESI.l1_states:
            assert MOESI.can_read[st.idx] == st.can_read
            assert MOESI.owns_data[st.idx] == st.owns_data
        # E is not in MOESI's state set, so the one divergence from the
        # Enum view (E.can_write) never materializes at run time
        assert E not in MOESI.l1_states

    def test_per_protocol_write_permission(self):
        assert [st for st in MOESI.l1_states if MOESI.can_write[st.idx]] == [M]
        assert [st for st in MSI.l1_states if MSI.can_write[st.idx]] == [M]
        # MESI: the silent E -> M upgrade is a write hit
        assert [st for st in MESI.l1_states if MESI.can_write[st.idx]] == \
            [E, M]

    def test_per_protocol_ownership(self):
        assert [st for st in MOESI.l1_states if MOESI.owns_data[st.idx]] == \
            [O, M]
        assert [st for st in MSI.l1_states if MSI.owns_data[st.idx]] == [M]
        assert [st for st in MESI.l1_states if MESI.owns_data[st.idx]] == \
            [E, M]

    def test_variant_flags(self):
        assert MOESI.fwd_gets_next is O
        assert MOESI.fail_share_next is O
        assert not MOESI.home_takes_ownership
        assert not MOESI.grant_exclusive_clean
        for spec in (MSI, MESI):
            assert spec.fwd_gets_next is S
            assert spec.fail_share_next is S
            assert spec.home_takes_ownership
        assert not MSI.grant_exclusive_clean
        assert MESI.grant_exclusive_clean
        assert MSI.exclusive_fill_state is S
        assert MESI.exclusive_fill_state is E


# ----------------------------------------------------------------------
# Attach-time compiler
# ----------------------------------------------------------------------
class TestCompiler:
    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_l1_dispatch_lowered_to_named_handlers(self, protocol):
        """The compiled tuple is exactly the tag-indexed bound-method
        layout the hand-built fast path used."""
        _sim, mem = make_system(protocol=protocol)
        l1 = mem.l1s[0]
        assert l1.protocol is PROTOCOLS[protocol]
        for mtype in L1_MESSAGE_EVENTS:
            handler = l1._dispatch[mtype.tag]
            assert handler is not None
            assert handler.__func__.__name__ == L1_HANDLER_NAMES[mtype.tag]
            assert handler.__self__ is l1
        for mtype in MessageType:
            if mtype not in L1_MESSAGE_EVENTS:
                assert l1._dispatch[mtype.tag] is None

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_dir_dispatch_lowered_to_named_handlers(self, protocol):
        _sim, mem = make_system(protocol=protocol)
        directory = mem.dirs[0]
        assert directory.protocol is PROTOCOLS[protocol]
        for mtype in DIR_MESSAGE_EVENTS:
            handler = directory._dispatch[mtype.tag]
            assert handler.__func__.__name__ == DIR_HANDLER_NAMES[mtype.tag]
        for mtype in MessageType:
            if mtype not in DIR_MESSAGE_EVENTS:
                assert directory._dispatch[mtype.tag] is None

    def test_compiled_flags_reach_the_controllers(self):
        _sim, mem = make_system(protocol="mesi")
        l1 = mem.l1s[3]
        assert l1._fwd_gets_state is S
        assert l1._fail_share_state is S
        assert l1._excl_fill_state is E
        assert l1._can_write[E.idx] and not l1._can_write[S.idx]
        directory = mem.dirs[0]
        assert directory._home_takes_ownership
        assert directory._grant_exclusive_clean


# ----------------------------------------------------------------------
# Variant semantics
# ----------------------------------------------------------------------
class TestMesiSemantics:
    def test_clean_gets_grants_exclusive(self):
        sim, mem = make_system(protocol="mesi")
        addr = mem.addr_for_home(3)
        mem.load(5, addr, lambda _v: None)
        sim.run()
        assert mem.l1s[5].state_of(addr) is E
        ent = mem.dirs[3].entry(addr)
        assert ent.owner == 5 and ent.sharer_mask == 0

    def test_second_sharer_demotes_the_grant(self):
        sim, mem = make_system(protocol="mesi")
        addr = mem.addr_for_home(3)
        mem.load(5, addr, lambda _v: None)
        sim.run()
        mem.load(9, addr, lambda _v: None)
        sim.run()
        assert mem.l1s[5].state_of(addr) is S
        assert mem.l1s[9].state_of(addr) is S
        ent = mem.dirs[3].entry(addr)
        assert ent.owner is None and ent.sharers == {5, 9}

    def test_silent_upgrade_issues_no_getx(self):
        sim, mem = make_system(protocol="mesi")
        addr = mem.addr_for_home(3)
        mem.load(5, addr, lambda _v: None)
        sim.run()
        sent = []
        original_send = mem.send

        def spying_send(src, dst, msg, **kw):
            sent.append(msg.mtype)
            return original_send(src, dst, msg, **kw)

        mem.send = spying_send
        done = []
        mem.store(5, addr, 42, done.append)
        sim.run()
        mem.send = original_send
        assert len(done) == 1  # store completed (callback sees old value)
        assert mem.l1s[5].state_of(addr) is M
        assert MessageType.GETX not in sent
        assert mem.read(addr) == 42

    def test_msi_never_grants_exclusive(self):
        sim, mem = make_system(protocol="msi")
        addr = mem.addr_for_home(3)
        mem.load(5, addr, lambda _v: None)
        sim.run()
        assert mem.l1s[5].state_of(addr) is S
        ent = mem.dirs[3].entry(addr)
        assert ent.owner is None and ent.sharers == {5}

    @pytest.mark.parametrize("protocol", ["msi", "mesi"])
    def test_sharing_a_dirty_block_returns_ownership_home(self, protocol):
        """No O state: after a reader hits a written block, the writer is
        demoted to Shared and the home reclaims ownership."""
        sim, mem = make_system(protocol=protocol)
        addr = mem.addr_for_home(3)
        mem.rmw(4, addr, lambda old: (old + 1, old), lambda _v: None)
        sim.run()
        assert mem.l1s[4].state_of(addr) is M
        mem.load(11, addr, lambda _v: None)
        sim.run()
        assert mem.l1s[4].state_of(addr) is S
        assert mem.l1s[11].state_of(addr) is S
        ent = mem.dirs[3].entry(addr)
        assert ent.owner is None and ent.sharers == {4, 11}

    def test_moesi_keeps_the_demoted_owner(self):
        sim, mem = make_system(protocol="moesi")
        addr = mem.addr_for_home(3)
        mem.rmw(4, addr, lambda old: (old + 1, old), lambda _v: None)
        sim.run()
        mem.load(11, addr, lambda _v: None)
        sim.run()
        assert mem.l1s[4].state_of(addr) is O
        ent = mem.dirs[3].entry(addr)
        assert ent.owner == 4 and ent.sharers == {11}


# ----------------------------------------------------------------------
# The table-validating checker: structured violations
# ----------------------------------------------------------------------
class TestStructuredViolations:
    def make_checked(self, protocol):
        sim, mem = make_system(protocol=protocol)
        checker = ProtocolChecker(sim, mem)
        return sim, mem, checker

    def test_state_outside_protocol_names_the_pair(self):
        """A forged Exclusive line under MSI is flagged the moment any
        message reaches it, with the (state, event) pair attached."""
        sim, mem, _checker = self.make_checked("msi")
        addr = mem.addr_for_home(3)
        mem.load(7, addr, lambda _v: None)
        sim.run()
        mem.l1s[7].lines[addr] = L1State.EXCLUSIVE  # not an MSI state
        inv = CoherenceMessage(MessageType.INV, addr, requester=0,
                               sender=3, inv_target=7)
        with pytest.raises(ProtocolViolation) as exc:
            mem.l1s[7]._dispatch[MessageType.INV.tag](inv)
        assert exc.value.state == "E"
        assert exc.value.event == "Inv"
        assert exc.value.core == 7
        assert exc.value.addr == addr

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_unhandled_pair_names_the_pair(self, protocol):
        """Delivering an AckCount to a line already in M hits the
        explicit UNHANDLED entry in every variant."""
        sim, mem, _checker = self.make_checked(protocol)
        addr = mem.addr_for_home(3)
        mem.rmw(4, addr, lambda old: (old + 1, old), lambda _v: None)
        sim.run()
        assert mem.l1s[4].state_of(addr) is M
        stray = CoherenceMessage(MessageType.ACK_COUNT, addr, requester=4,
                                 sender=3)
        with pytest.raises(ProtocolViolation) as exc:
            mem.l1s[4]._dispatch[MessageType.ACK_COUNT.tag](stray)
        assert exc.value.state == "M"
        assert exc.value.event == "AckCount"
        assert exc.value.core == 4

    def test_non_strict_records_the_pair_in_the_report(self):
        sim, mem, checker = self.make_checked("msi")
        checker.strict = False
        addr = mem.addr_for_home(3)
        mem.load(7, addr, lambda _v: None)
        sim.run()
        mem.l1s[7].lines[addr] = L1State.OWNED
        inv = CoherenceMessage(MessageType.INV, addr, requester=0,
                               sender=3, inv_target=7)
        mem.l1s[7]._dispatch[MessageType.INV.tag](inv)
        assert not checker.report.clean
        assert "(O, Inv)" in checker.report.violations[-1] or \
            "state O outside" in checker.report.violations[-1]

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_clean_contended_traffic_checks_transitions(self, protocol):
        sim, mem, checker = self.make_checked(protocol)
        addr = mem.addr_for_home(3)
        for core in range(8):
            mem.rmw(core, addr, lambda old: (old + 1, old), lambda v: None,
                    ll_sc=True)
        sim.run(until=1_000_000)
        checker.check_tracked_copies()
        assert checker.report.clean, checker.report.violations[:3]
        assert checker.report.transitions_checked > 0


# ----------------------------------------------------------------------
# Checked full runs + fast-path behavior per protocol
# ----------------------------------------------------------------------
class TestProtocolFamilyRuns:
    @pytest.mark.parametrize("protocol", ["msi", "mesi"])
    @pytest.mark.parametrize("mechanism", ["original", "inpg"])
    def test_contended_run_is_protocol_clean(self, protocol, mechanism):
        cfg = SystemConfig(
            noc=NocConfig(width=4, height=4), num_threads=16,
            protocol=protocol,
        ).with_mechanism(mechanism)
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                                  cs_cycles=60, parallel_cycles=150)
        system = ManyCoreSystem(cfg, wl, primitive="qsl")
        checker = ProtocolChecker(system.sim, system.memsys, period=500)
        result = system.run(max_cycles=20_000_000)
        system.sim.run(until=system.sim.cycle + 100_000)
        checker.check_tracked_copies()
        assert result.cs_completed == 32
        assert checker.report.clean, checker.report.violations[:3]
        assert checker.report.transitions_checked > 0

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_bitmask_and_pool_stay_active(self, protocol):
        """Every variant keeps the integer sharer masks and recycles
        messages through the pool (the PR-5 fast paths are
        protocol-independent)."""
        from repro.perf.workloads import run_dir_invalidation_storm

        _sim, net = run_dir_invalidation_storm(rounds=3, protocol=protocol)
        mem = net.memsys
        pool = mem.msg_pool
        assert pool.reused > 0
        assert pool.released >= pool.reused
        masks = [ent.sharer_mask
                 for d in mem.dirs.values() for ent in d.entries.values()]
        assert masks and all(isinstance(m, int) for m in masks)
