"""Round-trip tests for the lossless RunResult serialization layer.

The parallel executor and the disk cache both rely on
``serialize_run_result`` / ``deserialize_run_result`` preserving every
field the figure modules consume: ROI cycles, COH/CSE/LCO accounting,
timeline phases, coherence records and network counters.
"""

import json

import pytest

from repro.stats import (
    RESULT_SCHEMA_VERSION,
    deserialize_run_result,
    serialize_run_result,
)
from repro.stats.metrics import ThreadMetrics
from repro.stats.serialize import (
    thread_metrics_from_dict,
    thread_metrics_to_dict,
    timeline_from_dict,
    timeline_to_dict,
)
from repro.stats.timeline import PhaseInterval, Timeline
from repro.system import run_benchmark


@pytest.fixture(scope="module")
def result():
    return run_benchmark("vips", mechanism="inpg", primitive="tas",
                         scale=0.3)


@pytest.fixture(scope="module")
def roundtripped(result):
    # through an actual JSON string, exactly as the disk cache stores it
    payload = json.loads(json.dumps(serialize_run_result(result)))
    return deserialize_run_result(payload)


class TestRunResultRoundTrip:
    def test_headline_metrics(self, result, roundtripped):
        assert roundtripped.roi_cycles == result.roi_cycles
        assert roundtripped.benchmark == result.benchmark
        assert roundtripped.mechanism == result.mechanism
        assert roundtripped.primitive == result.primitive
        assert roundtripped.summary() == result.summary()

    def test_coh_cse_accounting(self, result, roundtripped):
        assert roundtripped.total_coh == result.total_coh
        assert roundtripped.total_cse == result.total_cse
        assert roundtripped.cs_completed == result.cs_completed
        assert roundtripped.avg_cycles_per_cs == result.avg_cycles_per_cs
        for mine, theirs in zip(roundtripped.threads, result.threads):
            assert thread_metrics_to_dict(mine) == \
                thread_metrics_to_dict(theirs)

    def test_lco_and_coherence_records(self, result, roundtripped):
        assert roundtripped.lco_fraction == result.lco_fraction
        mine, theirs = roundtripped.coherence, result.coherence
        assert mine.msg_counts == theirs.msg_counts
        assert mine.mean_inv_rtt == theirs.mean_inv_rtt
        assert mine.max_inv_rtt == theirs.max_inv_rtt
        assert mine.mean_inv_rtt_by_kind() == theirs.mean_inv_rtt_by_kind()
        assert mine.inv_rtt_by_core() == theirs.inv_rtt_by_core()
        assert len(mine.lock_txns) == len(theirs.lock_txns)
        assert mine.total_lco == theirs.total_lco
        assert mine.early_invs_generated == theirs.early_invs_generated
        assert mine.getx_stopped == theirs.getx_stopped
        assert mine.barrier_table_overflows == theirs.barrier_table_overflows
        assert (mine.early_acks_consumed_before_txn ==
                theirs.early_acks_consumed_before_txn)

    def test_timeline_phases(self, result, roundtripped):
        assert roundtripped.timeline.intervals == result.timeline.intervals
        window = (0, result.roi_cycles)
        assert (roundtripped.timeline.phase_breakdown(window=window) ==
                result.timeline.phase_breakdown(window=window))
        assert (roundtripped.timeline.cs_completed(window=window) ==
                result.timeline.cs_completed(window=window))

    def test_network_and_os_counters(self, result, roundtripped):
        assert roundtripped.network_packets == result.network_packets
        assert (roundtripped.network_mean_latency ==
                result.network_mean_latency)
        assert roundtripped.os_sleeps == result.os_sleeps
        assert roundtripped.os_wakeups == result.os_wakeups
        assert roundtripped.extra == result.extra
        assert roundtripped.extra.get("sim_events", 0) > 0


class TestSchemaVersion:
    def test_wrong_schema_is_rejected(self, result):
        payload = serialize_run_result(result)
        payload["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            deserialize_run_result(payload)

    def test_missing_schema_is_rejected(self, result):
        payload = serialize_run_result(result)
        del payload["schema"]
        with pytest.raises(ValueError):
            deserialize_run_result(payload)


class TestComponentRoundTrips:
    def test_thread_metrics(self):
        metrics = ThreadMetrics(thread=7, parallel_cycles=100, coh_cycles=40,
                                cse_cycles=25, cs_completed=3, sleeps=1)
        again = thread_metrics_from_dict(thread_metrics_to_dict(metrics))
        assert again == metrics
        assert again.total_cycles == metrics.total_cycles

    def test_timeline(self):
        timeline = Timeline()
        timeline.intervals = [
            PhaseInterval(0, "parallel", 0, 50),
            PhaseInterval(0, "coh", 50, 90),
            PhaseInterval(1, "cse", 20, 45),
        ]
        again = timeline_from_dict(
            json.loads(json.dumps(timeline_to_dict(timeline)))
        )
        assert again.intervals == timeline.intervals
        assert again.phase_cycles("coh") == 40
