"""The simulation service: proto schema, store, e2e dedupe, parity.

The e2e tests boot a real ``inpg-serve`` on an ephemeral port (the
asyncio loop runs on a background thread) and talk to it through the
same :class:`~repro.serve.client.ServiceClient` /
:class:`~repro.serve.client.RemoteExecutor` the ``--remote`` CLI flags
use, so the wire protocol, the dedupe path and the result store are all
exercised exactly as a remote harness would.
"""

import json

import pytest

from repro.exec import Executor, RunSpec
from repro.exec.executor import FailureRecord
from repro.serve import proto
from repro.serve.client import (
    LocalClient,
    RemoteExecutor,
    ServiceClient,
    connect,
)
from repro.serve.server import start_in_thread
from repro.serve.store import ResultStore
from repro.stats.serialize import (
    failure_record_from_dict,
    failure_record_to_dict,
    result_fingerprint,
)

#: the e2e workload: small enough for CI, real enough to hit the full
#: simulator; its *spec* fingerprint is pinned (content-addressing must
#: not drift across releases, or every deployed cache goes cold)
GOLDEN_SPEC = dict(benchmark="bwaves", mechanism="original", scale=0.25)
GOLDEN_SPEC_FINGERPRINT = (
    "37cd7c9c169095b3ce1744bcd1f64f6a755ff250f426ec21e04592bd6b62254c"
)


# ----------------------------------------------------------------------
# Proto schema
# ----------------------------------------------------------------------
class TestProto:
    def test_submit_round_trip(self):
        specs = [
            RunSpec(**GOLDEN_SPEC),
            RunSpec(benchmark="kdtree", mechanism="inpg",
                    primitive="tas", scale=0.5, seed=7,
                    protocol="msi", check_protocol=True),
        ]
        request = proto.submit_request(specs, timeout_s=1.5, retries=2)
        wire = json.loads(json.dumps(request))  # a real wire hop
        decoded, policy = proto.decode_submit(wire)
        assert decoded == specs
        assert [s.fingerprint for s in decoded] == \
            [s.fingerprint for s in specs]
        assert policy == {"timeout_s": 1.5, "retries": 2}

    def test_unknown_version_rejected(self):
        request = proto.submit_request([RunSpec(**GOLDEN_SPEC)])
        request["proto"] = proto.PROTO_SCHEMA_VERSION + 1
        with pytest.raises(proto.ProtoError, match="proto version"):
            proto.decode_submit(request)

    def test_unknown_kind_and_unknown_policy_rejected(self):
        with pytest.raises(proto.ProtoError, match="kind"):
            proto.envelope("gossip")
        request = proto.submit_request([RunSpec(**GOLDEN_SPEC)])
        request["policy"]["jobs"] = 4  # server-owned, not negotiable
        with pytest.raises(proto.ProtoError, match="policy"):
            proto.decode_submit(request)

    def test_error_envelope_surfaces_as_proto_error(self):
        message = proto.error_message("unknown-job", "no job 'j9'")
        with pytest.raises(proto.ProtoError, match="unknown-job"):
            proto.open_envelope(message, "job")

    def test_undecodable_spec_rejected(self):
        request = proto.submit_request([RunSpec(**GOLDEN_SPEC)])
        request["specs"][0]["config"] = {"noc": {"no_such_field": 1}}
        with pytest.raises(proto.ProtoError, match="undecodable spec"):
            proto.decode_submit(request)

    def test_golden_spec_fingerprint_pinned(self):
        assert RunSpec(**GOLDEN_SPEC).fingerprint == \
            GOLDEN_SPEC_FINGERPRINT


# ----------------------------------------------------------------------
# FailureRecord round trip (satellite bugfix: footer failures must be
# queryable from the result store)
# ----------------------------------------------------------------------
class TestFailureRecordSerialization:
    RECORD = FailureRecord(
        fingerprint="ab" * 32, label="bwaves[original/qsl]",
        error_type="RunTimeout", message="budget exceeded\ndetail",
        attempts=3, wall_time=1.25,
    )

    def test_round_trip(self):
        payload = json.loads(json.dumps(
            failure_record_to_dict(self.RECORD)))
        assert failure_record_from_dict(payload) == self.RECORD

    def test_schema_version_checked(self):
        payload = failure_record_to_dict(self.RECORD)
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            failure_record_from_dict(payload)

    def test_store_persists_and_queries_failures(self, tmp_path):
        from repro.exec.cache import ResultCache

        store = ResultStore(ResultCache(tmp_path / "cache"))
        store.record_failure(self.RECORD)
        # a second store over the same directory sees it (disk, not
        # just the in-memory table)
        reread = ResultStore(ResultCache(tmp_path / "cache"))
        record = reread.get_failure(self.RECORD.fingerprint)
        assert record == self.RECORD
        assert reread.summary()["failures"] == 1


# ----------------------------------------------------------------------
# End-to-end service
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-store")
    handle = start_in_thread(
        Executor(jobs=1, cache_dir=cache_dir, on_error="skip"))
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


class TestServiceEndToEnd:
    def test_health_reports_versions(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["proto"] == proto.PROTO_SCHEMA_VERSION

    def test_duplicate_pair_executes_once(self, client):
        spec = RunSpec(**GOLDEN_SPEC)
        job = client.submit([spec, spec])
        assert job["counts"]["queued"] == 1
        assert job["counts"]["deduped"] == 1
        final = client.wait(job["id"], timeout_s=300)
        assert final["state"] == "done"
        assert final["counts"]["done"] == 1
        assert final["counts"]["deduped"] == 1
        assert final["specs"][0]["fingerprint"] == \
            GOLDEN_SPEC_FINGERPRINT
        counters = client.stats()["counters"]
        assert counters["serve/specs_executed"] == 1
        assert counters["serve/deduped_inflight"] == 1

    def test_resubmission_dedupes_against_cache(self, client):
        spec = RunSpec(**GOLDEN_SPEC)
        before = client.stats()["counters"]
        job = client.submit([spec])
        assert job["state"] == "done"  # resolved at submit time
        assert job["counts"]["cached"] == 1
        after = client.stats()["counters"]
        assert after["serve/deduped_cache"] == \
            before.get("serve/deduped_cache", 0) + 1
        assert after["serve/specs_executed"] == \
            before["serve/specs_executed"]  # nothing re-ran

    def test_remote_result_matches_local_bit_for_bit(self, client):
        remote = client.result(GOLDEN_SPEC_FINGERPRINT)
        local = Executor(jobs=1, use_cache=False).run_one(
            RunSpec(**GOLDEN_SPEC))
        assert result_fingerprint(remote) == result_fingerprint(local)

    def test_store_index_lists_the_run(self, client):
        rows = client.store_index()
        assert any(row["fingerprint"] == GOLDEN_SPEC_FINGERPRINT
                   and row["benchmark"] == "bwaves" for row in rows)

    def test_events_stream_ends_terminal(self, client):
        spec = RunSpec(**GOLDEN_SPEC)
        job = client.submit([spec])
        events = list(client.iter_events(job["id"]))
        assert events and events[-1]["state"] == "done"

    def test_failed_run_is_recorded_and_queryable(self, client):
        spec = RunSpec(benchmark="kdtree", mechanism="original",
                       scale=0.25)
        job = client.submit([spec], timeout_s=0.0)  # instant budget
        final = client.wait(job["id"], timeout_s=60)
        assert final["counts"]["failed"] == 1
        record = client.failure(spec.fingerprint)
        assert record is not None
        assert record.error_type == "RunTimeout"
        with pytest.raises(proto.ProtoError, match="unknown-result"):
            client.result(spec.fingerprint)

    def test_unknown_routes_are_structured_errors(self, client):
        with pytest.raises(proto.ProtoError, match="unknown-job"):
            client.job("j999")
        with pytest.raises(proto.ProtoError, match="not-found"):
            client._request("GET", "/nope")


class TestRemoteExecutor:
    def test_facade_matches_local_fingerprint(self, service):
        remote = RemoteExecutor(service.url)
        spec = RunSpec(**GOLDEN_SPEC)
        result = remote.run_one(spec)
        local = Executor(jobs=1, use_cache=False).run_one(spec)
        assert result_fingerprint(result) == result_fingerprint(local)
        # the run was served from the service's cache: a shared hit
        assert remote.stats.disk_hits == 1
        assert remote.stats.executed == 0
        # footer renders with the remote store as the cache line
        footer = remote.stats.render_footer(
            jobs=remote.jobs, cache_dir=remote.cache.directory)
        assert service.url in footer

    def test_raise_mode_surfaces_service_failures(self, service):
        from repro.errors import ExecutorError

        remote = RemoteExecutor(service.url)
        spec = RunSpec(benchmark="md", mechanism="original",
                       scale=0.25)
        with pytest.raises(ExecutorError, match="RunTimeout"):
            remote.run([spec], timeout_s=0.0)

    def test_skip_mode_records_failure(self, service):
        remote = RemoteExecutor(service.url, on_error="skip")
        spec = RunSpec(benchmark="swim", mechanism="original",
                       scale=0.25)
        results = remote.run([spec], timeout_s=0.0)
        assert results[spec] is None
        assert remote.stats.failed == 1
        assert remote.stats.failures[0].error_type == "RunTimeout"


class TestConnect:
    def test_local_client_runs_in_process(self):
        client = connect(jobs=1, use_cache=False)
        assert isinstance(client, LocalClient)
        spec = RunSpec(**GOLDEN_SPEC)
        job = client.submit([spec])
        assert job["state"] == "done"
        assert client.result(spec.fingerprint).roi_cycles > 0

    def test_remote_url_gives_service_client(self, service):
        client = connect(service.url)
        assert isinstance(client, ServiceClient)
        assert client.health()["status"] == "ok"

    def test_executor_kwargs_rejected_for_remote(self):
        with pytest.raises(TypeError, match="owns its own executor"):
            connect("http://127.0.0.1:1", jobs=4)
