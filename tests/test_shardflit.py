"""Tests for the sharded flit engine (:mod:`repro.noc.shardflit`).

The sharded engine's contract is the vector engine's, spatially
partitioned: row-band shards advanced under a cycle-batched
boundary-exchange barrier must replay the single-process engines
delivery for delivery — in-process or across worker processes, NumPy or
pure Python, one shard or many.  These tests pin that claim against the
committed flit golden, property-check it against the event reference on
randomized traffic, and cover the engine's structured refusals (engine
mismatches, traced multi-shard runs, worker crashes, non-mesh
topologies, router/link fault sites).
"""

import dataclasses
import json
import os

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import NocConfig
from repro.errors import (
    ExecutorError,
    ShardConfigError,
    ShardWorkerError,
    UnsupportedFaultSite,
    UnsupportedTopology,
)
from repro.exec import RunSpec
from repro.faults import FaultPlan
from repro.faults.injector import FaultInjector
from repro.noc.shardflit import ShardedFlitFabric, ShardedFlitNetwork
from repro.noc.vecflit import make_flit_network
from repro.sim import Simulator

from test_golden_determinism import GOLDEN_FLIT
from test_vecflit import _fingerprint, _golden_plan, _random_plan, _run_cosim


def _sharded_config(mesh, shards):
    return NocConfig(
        width=mesh, height=mesh, flit_engine="sharded", shards=shards
    )


def _run_standalone(mesh, plan, shards, force_python=False,
                    use_processes=None):
    """Plan-driven drive (``send_at``/``run``); returns the trace."""
    net = ShardedFlitNetwork(
        _sharded_config(mesh, shards),
        force_python=force_python, use_processes=use_processes,
    )
    for cycle, src, dst, length in plan:
        net.send_at(cycle, src, dst, length)
    net.run(until=2_000_000)
    stream = [
        (p.src, p.dst, p.length, p.injected_cycle, p.delivered_cycle)
        for p in net.delivered
    ]
    return net, stream


def _run_sharded_cosim(mesh, plan, shards, force_python=False):
    """Kernel co-sim drive (``schedule_at``); returns the trace."""
    sim = Simulator()
    net = ShardedFlitNetwork(
        _sharded_config(mesh, shards), sim=sim, force_python=force_python
    )
    for cycle, src, dst, length in plan:
        sim.schedule_at(cycle, net.send, src, dst, length)
    sim.run(until=2_000_000)
    stream = [
        (p.src, p.dst, p.length, p.injected_cycle, p.delivered_cycle)
        for p in net.delivered
    ]
    return stream, sim.cycle, sim.events_processed


# ----------------------------------------------------------------------
# Vocabulary: the shards axis and its engine coupling
# ----------------------------------------------------------------------
class TestShardVocabulary:
    def test_shards_validated_against_mesh_height(self):
        assert NocConfig(flit_engine="sharded", shards=8).shards == 8
        with pytest.raises(ValueError, match="between 1 and the mesh"):
            NocConfig(flit_engine="sharded", shards=0)
        with pytest.raises(ValueError, match="between 1 and the mesh"):
            NocConfig(width=8, height=8, flit_engine="sharded", shards=9)

    def test_multi_shard_requires_the_sharded_engine(self):
        for engine in ("event", "vector"):
            with pytest.raises(ValueError, match="requires flit_engine"):
                NocConfig(flit_engine=engine, shards=2)

    def test_factory_builds_sharded_network(self):
        net = make_flit_network(
            Simulator(), NocConfig(width=4, height=4), "sharded"
        )
        assert isinstance(net, ShardedFlitNetwork)

    def test_factory_refuses_multi_shard_on_single_process_engines(self):
        cfg = NocConfig(width=8, height=8, flit_engine="sharded", shards=4)
        for engine in ("event", "vector"):
            with pytest.raises(ShardConfigError) as excinfo:
                make_flit_network(Simulator(), cfg, engine)
            assert excinfo.value.engine == engine
            assert excinfo.value.shards == 4
            # a generic config-validation fence still catches it
            assert isinstance(excinfo.value, ValueError)

    def test_non_mesh_topology_refused_structurally(self):
        cfg = dataclasses.replace(
            NocConfig(width=4, height=4, flit_engine="sharded", shards=2),
            topology="torus",
        )
        with pytest.raises(UnsupportedTopology) as excinfo:
            ShardedFlitNetwork(cfg)
        assert excinfo.value.model == "flit/sharded"
        assert excinfo.value.topology == "torus"


# ----------------------------------------------------------------------
# Golden bit-exactness
# ----------------------------------------------------------------------
class TestShardedGolden:
    def test_single_shard_matches_pinned_golden(self):
        net, _stream = _run_standalone(8, _golden_plan(), shards=1)
        assert (
            _fingerprint(net.delivered),
            net.events_processed,
            len(net.delivered),
        ) == GOLDEN_FLIT

    def test_cosim_drive_matches_pinned_golden(self):
        for shards in (1, 2, 4):
            stream, _cycle, events = _run_sharded_cosim(
                8, _golden_plan(), shards
            )
            assert events == GOLDEN_FLIT[1], f"shards={shards}"
            assert len(stream) == GOLDEN_FLIT[2], f"shards={shards}"

    def test_pure_python_path_matches_pinned_golden(self):
        net, _stream = _run_standalone(
            8, _golden_plan(), shards=2, force_python=True,
            use_processes=False,
        )
        assert (
            _fingerprint(net.delivered),
            net.events_processed,
            len(net.delivered),
        ) == GOLDEN_FLIT

    @pytest.mark.parametrize("shards", (2, 4))
    def test_worker_processes_match_pinned_golden(self, shards):
        net, _stream = _run_standalone(8, _golden_plan(), shards=shards)
        assert (
            _fingerprint(net.delivered),
            net.events_processed,
            len(net.delivered),
        ) == GOLDEN_FLIT
        counters = net.shard_counters()
        assert len(counters) == shards
        assert sum(c["events"] for c in counters) == net.events_processed

    def test_worker_runs_replay_each_other(self):
        """Back-to-back multiprocess runs are bit-identical."""
        _net1, first = _run_standalone(8, _golden_plan(), shards=2)
        _net2, second = _run_standalone(8, _golden_plan(), shards=2)
        assert first == second

    def test_multiprocess_run_is_one_shot(self):
        net, _stream = _run_standalone(8, _golden_plan(packets=40), 2)
        with pytest.raises(Exception, match="one-shot|already ran"):
            net.run(until=2_000_000)

    def test_multiprocess_drive_is_plan_only(self):
        net = ShardedFlitNetwork(_sharded_config(8, 2))
        with pytest.raises(RuntimeError, match="send_at"):
            net.send(0, 9, 1)


# ----------------------------------------------------------------------
# Randomized parity against the event reference
# ----------------------------------------------------------------------
class TestShardedParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_event_vs_sharded_parity(self, seed):
        """Seed sweep: the sharded engine replays the event reference
        exactly — same stream, same final cycle, same event count."""
        mesh, plan = _random_plan(seed)
        reference = _run_cosim("event", mesh, plan)
        for shards in (2, 4):
            if shards > mesh:
                continue
            assert _run_sharded_cosim(mesh, plan, shards) == reference, \
                f"seed={seed} shards={shards}"

    def test_boundary_counters_are_symmetric(self):
        """Every flit shard i ships down is a credit shard i+1 ships up
        (and vice versa): the seam accounting must agree."""
        net, _stream = _run_standalone(
            8, _golden_plan(), shards=2, use_processes=False
        )
        lo, hi = net.shard_counters()
        assert lo["boundary_flits"][1] == hi["boundary_credits"][0]
        assert hi["boundary_flits"][0] == lo["boundary_credits"][1]
        assert lo["boundary_flits"][1] > 0


# ----------------------------------------------------------------------
# Worker failure: structured propagation, never a hang
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_worker_crash_raises_structured_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TEST_CRASH", "1")
        net = ShardedFlitNetwork(_sharded_config(8, 4))
        for cycle, src, dst, length in _golden_plan(packets=80):
            net.send_at(cycle, src, dst, length)
        with pytest.raises(ShardWorkerError) as excinfo:
            net.run(until=2_000_000)
        err = excinfo.value
        assert err.shard == 1
        assert err.shards == 4
        assert err.worker_traceback  # the formatted trace crossed the pipe
        # executor-level fencing catches it
        assert isinstance(err, ExecutorError)


# ----------------------------------------------------------------------
# Addressing: fingerprints, labels, the wire
# ----------------------------------------------------------------------
class TestShardAddressing:
    @staticmethod
    def _spec(**noc_kw):
        return RunSpec(
            benchmark="bwaves",
            config=SystemConfig(noc=NocConfig(flit_level=True, **noc_kw)),
        )

    def test_default_shards_keeps_spec_fingerprints(self):
        """Spelling out shards=1 must not re-address cached results; a
        multi-shard run is bit-exact but addresses itself."""
        base = self._spec(flit_engine="vector")
        spelled = self._spec(flit_engine="vector", shards=1)
        assert base.fingerprint == spelled.fingerprint
        sharded = self._spec(flit_engine="sharded", shards=4)
        assert sharded.fingerprint != base.fingerprint
        payload = spelled.canonical_payload()
        assert "shards" not in payload["config"]["noc"]

    def test_label_names_multi_shard_runs(self):
        assert "shards=4" in self._spec(
            flit_engine="sharded", shards=4
        ).label()
        assert "shards" not in self._spec(flit_engine="vector").label()

    def test_sharded_spec_round_trips_through_serve_proto(self):
        from repro.serve import proto

        spec = self._spec(flit_engine="sharded", shards=4)
        request = proto.submit_request([spec])
        wire = json.loads(json.dumps(request))  # a real wire hop
        decoded, _policy = proto.decode_submit(wire)
        assert decoded == [spec]
        assert decoded[0].fingerprint == spec.fingerprint
        assert decoded[0].config.noc.shards == 4


# ----------------------------------------------------------------------
# Full system
# ----------------------------------------------------------------------
def _system_config(engine, shards=1):
    base = SystemConfig()
    return dataclasses.replace(
        base,
        noc=dataclasses.replace(
            base.noc, flit_level=True, flit_engine=engine, shards=shards
        ),
    )


class TestShardedFullSystem:
    def test_sharded_fabric_is_selected(self):
        system = ManyCoreSystem(
            _system_config("sharded", shards=2),
            single_lock_workload(8, home_node=5),
        )
        assert isinstance(system.network, ShardedFlitFabric)

    def test_full_system_matches_vector_engine_exactly(self):
        """Co-simulated shards share the vector engine's schedule, so a
        full system replays it cycle for cycle (the event engine is only
        statistically close — DESIGN.md §13)."""
        workload = single_lock_workload(
            8, home_node=5, cs_per_thread=2, cs_cycles=50,
            parallel_cycles=150,
        )
        runs = {}
        for engine, shards in (("vector", 1), ("sharded", 2)):
            system = ManyCoreSystem(
                _system_config(engine, shards), workload, primitive="mcs"
            )
            result = system.run(max_cycles=20_000_000)
            runs[engine] = (
                result.roi_cycles, result.cs_completed,
                system.sim.events_processed,
            )
        assert runs["sharded"] == runs["vector"]

    def test_traced_multi_shard_run_is_refused(self):
        from repro.obs import Observation

        with pytest.raises(ShardConfigError) as excinfo:
            ManyCoreSystem(
                _system_config("sharded", shards=2),
                single_lock_workload(8, home_node=5),
                observe=Observation(trace=True),
            )
        assert excinfo.value.shards == 2

    def test_traced_single_shard_run_falls_back_to_event_engine(self):
        from repro.noc.flit_fabric import FlitFabric
        from repro.obs import Observation

        system = ManyCoreSystem(
            _system_config("sharded", shards=1),
            single_lock_workload(8, home_node=5),
            observe=Observation(trace=True),
        )
        assert isinstance(system.network, FlitFabric)

    def test_counter_observation_samples_per_shard_gauges(self):
        from repro.obs import Observation

        observe = Observation(trace=False)
        system = ManyCoreSystem(
            _system_config("sharded", shards=2),
            single_lock_workload(64, home_node=53),
            observe=observe,
        )
        system.run(max_cycles=20_000_000)
        snap = observe.registry.snapshot()
        assert snap["noc/shard0/events"] > 0
        assert snap["noc/shard1/events"] > 0
        # the seam accounting agrees when folded across directions
        assert snap["noc/shard0/boundary_flits"] > 0


# ----------------------------------------------------------------------
# Faults
# ----------------------------------------------------------------------
class TestShardedFaults:
    def test_router_sites_refused_structurally(self):
        fabric = ShardedFlitFabric(
            Simulator(), NocConfig(width=4, height=4, flit_engine="sharded")
        )
        with pytest.raises(UnsupportedFaultSite) as excinfo:
            FaultInjector(FaultPlan.parse("drop:1@router:3", seed=1)) \
                .install(fabric)
        assert excinfo.value.model == "flit/sharded"
        assert excinfo.value.site_kinds == ("router",)

    def test_inject_sites_apply(self):
        sim = Simulator()
        fabric = ShardedFlitFabric(
            sim, NocConfig(width=4, height=4, flit_engine="sharded")
        )
        for n in range(16):
            fabric.register_endpoint(n, lambda p: None)
        FaultInjector(FaultPlan.parse("drop:1@inject", seed=1)) \
            .install(fabric)
        for src in range(4):
            fabric.send(src, 15, payload="x", size_flits=2)
        sim.run(until=100_000)
        assert fabric.packets_injected == 4
        assert fabric.packets_dropped == 4
        assert fabric.packets_delivered == 0


# ----------------------------------------------------------------------
# Perf harness integration
# ----------------------------------------------------------------------
class TestPerfIntegration:
    def test_layer_map_attributes_shardflit(self):
        from repro.perf.profiling import LAYERS, layer_of

        assert "noc-shard" in LAYERS
        assert layer_of("src/repro/noc/shardflit.py") == "noc-shard"
        # the wider noc mappings are untouched
        assert layer_of("src/repro/noc/vecflit.py") == "noc-flit"
        assert layer_of("src/repro/noc/router.py") == "noc"

    def test_sharded_workloads_registered(self):
        from repro.perf.workloads import (
            FLIT_WORKLOAD_ENGINES,
            QUICK_WORKLOADS,
            WORKLOADS,
        )

        assert "flit_sharded_big_mesh" in WORKLOADS
        assert "flit_sharded_big_mesh" in QUICK_WORKLOADS
        assert FLIT_WORKLOAD_ENGINES["flit_sharded_big_mesh"] == "sharded"
        assert FLIT_WORKLOAD_ENGINES["flit_sharded_mesh32"] == "sharded"

    def test_unknown_workload_names_rejected_up_front(self, capsys):
        from repro.perf.report import main

        assert main(["--workloads", "flit_uniform", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "known:" in err

    def test_sharded_workload_pins_the_big_mesh_event_count(self):
        """The sharded big-mesh leg simulates flit_big_mesh's exact
        stream (small plan here; the pinned full counts live in
        BENCH_core.json)."""
        from repro.perf.workloads import flit_big_mesh, flit_sharded_big_mesh

        vector = flit_big_mesh(packets=400)
        sharded = flit_sharded_big_mesh(packets=400, shards=2)
        assert sharded.name == "flit_sharded_big_mesh[shards=2]"
        assert (sharded.events, sharded.cycles) == \
            (vector.events, vector.cycles)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestShardCli:
    def test_shards_without_sharded_engine_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["microbench", "--flit-engine", "vector",
                     "--shards", "2"]) == 2
        assert "requires --flit-engine sharded" in capsys.readouterr().err

    def test_shards_env_default(self, monkeypatch):
        from repro.cli import resolve_shards

        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(object()) == 4
        monkeypatch.delenv("REPRO_SHARDS")
        assert resolve_shards(object()) == 1

    def test_experiment_options_carry_shards_into_configs(self):
        from repro.experiments.common import ExperimentOptions

        options = ExperimentOptions(flit_engine="sharded", shards=2)
        spec = options.apply_to_spec(RunSpec(benchmark="bwaves"))
        assert spec.config.noc.flit_engine == "sharded"
        assert spec.config.noc.shards == 2


# ----------------------------------------------------------------------
# Scaling (only meaningful with real parallel hardware)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 4,
    reason="speedup needs >=4 usable CPUs; fewer only measures "
           "barrier overhead",
)
def test_four_shards_beat_single_process_vector():
    """The acceptance scaling bar: >=1.8x on the big-mesh workload."""
    from repro.perf.workloads import flit_big_mesh, flit_sharded_big_mesh

    vector = flit_big_mesh()
    sharded = flit_sharded_big_mesh(shards=4)
    assert (sharded.events, sharded.cycles) == (vector.events, vector.cycles)
    assert sharded.wall_s < vector.wall_s / 1.8
