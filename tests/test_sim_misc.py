"""Unit tests for RNG streams, components, and packet bookkeeping."""

from repro.noc import Packet
from repro.sim import Component, Simulator, make_rng, stream_seed


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = make_rng(42, "workload/x")
        b = make_rng(42, "workload/x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_labels_are_independent(self):
        a = make_rng(42, "workload/x")
        b = make_rng(42, "workload/y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seed_is_64_bit(self):
        s = stream_seed(2**63, "label")
        assert 0 <= s < 2**64


class TestComponent:
    def test_after_schedules_relative(self):
        sim = Simulator()
        comp = Component(sim, "c")
        fired = []
        sim.schedule(10, lambda: comp.after(5, lambda: fired.append(comp.now)))
        sim.run()
        assert fired == [15]


class TestPacket:
    def test_latency_before_delivery_is_negative(self):
        pkt = Packet(src=0, dst=1, payload=None)
        assert pkt.latency == -1

    def test_unique_ids(self):
        a = Packet(src=0, dst=1, payload=None)
        b = Packet(src=0, dst=1, payload=None)
        assert a.pid != b.pid

    def test_control_vnet_default(self):
        pkt = Packet(src=0, dst=1, payload=None, size_flits=1)
        assert pkt.vnet == 0
