"""Unit tests for statistics: coherence stats, timeline, histogram, metrics."""

import pytest

from repro.stats import (
    CoherenceStats,
    Histogram,
    RunResult,
    ThreadMetrics,
    Timeline,
)


class TestCoherenceStats:
    def test_inv_rtt_aggregates(self):
        s = CoherenceStats()
        s.inv_completed(1, created=10, consumed=40, early=False)
        s.inv_completed(2, created=10, consumed=20, early=True)
        assert s.mean_inv_rtt == 20.0
        assert s.max_inv_rtt == 30
        by_kind = s.mean_inv_rtt_by_kind()
        assert by_kind["early"] == 10.0
        assert by_kind["normal"] == 30.0

    def test_rtt_by_core(self):
        s = CoherenceStats()
        s.inv_completed(5, 0, 10, False)
        s.inv_completed(5, 0, 30, False)
        s.inv_completed(7, 0, 8, True)
        per_core = s.inv_rtt_by_core()
        assert per_core[5] == 20.0
        assert per_core[7] == 8.0

    def test_rtt_histogram_bins(self):
        s = CoherenceStats()
        for rtt in (1, 4, 5, 9, 23):
            s.inv_completed(0, 0, rtt, False)
        hist = s.inv_rtt_histogram(bin_width=5)
        assert hist[0] == 2
        assert hist[5] == 2
        assert hist[20] == 1

    def test_lock_txn_lifecycle(self):
        s = CoherenceStats()
        s.txn_started(1, addr=0x100, winner=3, start=100, invs_sent=5)
        s.txn_committed(1, commit=180, early_acks_used=2)
        assert len(s.lock_txns) == 1
        rec = s.lock_txns[0]
        assert rec.duration == 80
        assert rec.invs_sent == 5
        assert rec.early_acks_used == 2
        assert s.total_lco == 80

    def test_unknown_txn_commit_ignored(self):
        s = CoherenceStats()
        s.txn_committed(99, commit=50, early_acks_used=0)
        assert s.lock_txns == []

    def test_empty_aggregates(self):
        s = CoherenceStats()
        assert s.mean_inv_rtt == 0.0
        assert s.max_inv_rtt == 0
        assert s.total_lco == 0


class TestTimeline:
    def test_phase_intervals_recorded(self):
        t = Timeline()
        t.begin(0, "parallel", 0)
        t.begin(0, "coh", 100)
        t.begin(0, "cse", 150)
        t.end(0, 200)
        assert len(t.intervals) == 3
        assert t.phase_cycles("parallel") == 100
        assert t.phase_cycles("coh") == 50
        assert t.phase_cycles("cse") == 50

    def test_unknown_phase_rejected(self):
        t = Timeline()
        with pytest.raises(ValueError):
            t.begin(0, "mystery", 0)

    def test_windowed_query_clips_intervals(self):
        t = Timeline()
        t.begin(0, "parallel", 0)
        t.end(0, 100)
        assert t.phase_cycles("parallel", window=(50, 80)) == 30
        assert t.phase_cycles("parallel", window=(90, 200)) == 10
        assert t.phase_cycles("parallel", window=(100, 200)) == 0

    def test_breakdown_fractions_sum_to_one(self):
        t = Timeline()
        t.begin(1, "parallel", 0)
        t.begin(1, "coh", 60)
        t.begin(1, "cse", 80)
        t.end(1, 100)
        frac = t.phase_breakdown()
        assert abs(sum(frac.values()) - 1.0) < 1e-9
        assert frac["parallel"] == 0.6

    def test_thread_filter(self):
        t = Timeline()
        t.begin(0, "cse", 0)
        t.end(0, 10)
        t.begin(1, "cse", 0)
        t.end(1, 30)
        assert t.phase_cycles("cse", threads=[1]) == 30

    def test_cs_completed_counts_cse_ends_in_window(self):
        t = Timeline()
        for i, (start, end) in enumerate([(0, 10), (20, 35), (50, 90)]):
            t.begin(0, "cse", start)
            t.end(0, end)
        assert t.cs_completed() == 3
        assert t.cs_completed(window=(0, 40)) == 2

    def test_close_all_flushes_open_intervals(self):
        t = Timeline()
        t.begin(3, "coh", 10)
        t.close_all(25)
        assert t.phase_cycles("coh") == 15


class TestHistogram:
    def test_binning_and_stats(self):
        h = Histogram(bin_width=10)
        h.extend([0, 5, 10, 99])
        assert h.count == 4
        assert h.max_sample == 99
        assert dict(h.bins())[0] == 2
        assert dict(h.bins())[90] == 1
        assert h.mean == pytest.approx(28.5)

    def test_negative_sample_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.add(-1)

    def test_render_produces_rows(self):
        h = Histogram(bin_width=5)
        h.extend([1, 2, 3, 11])
        out = h.render()
        assert len(out.splitlines()) == 2
        assert "#" in out


class TestRunResult:
    def _result(self, roi=1000, coh=(100, 200), cse=(50, 50)):
        threads = []
        for i, (c, e) in enumerate(zip(coh, cse)):
            tm = ThreadMetrics(thread=i)
            tm.coh_cycles = c
            tm.cse_cycles = e
            tm.cs_completed = 2
            threads.append(tm)
        return RunResult(
            mechanism="original", primitive="qsl", benchmark="x",
            roi_cycles=roi, threads=threads,
            coherence=CoherenceStats(), timeline=Timeline(),
        )

    def test_totals(self):
        r = self._result()
        assert r.total_coh == 300
        assert r.total_cse == 100
        assert r.total_cs_time == 400
        assert r.cs_completed == 4

    def test_speedup_and_expedition(self):
        slow = self._result(roi=2000, coh=(400, 400), cse=(100, 100))
        fast = self._result(roi=1000, coh=(100, 100), cse=(100, 100))
        assert fast.speedup_vs(slow) == 2.0
        assert fast.cs_expedition_vs(slow) == pytest.approx(2.5)

    def test_lco_fraction_clamped(self):
        r = self._result(roi=10)
        r.coherence.txn_started(1, 0, 0, 0, 0)
        r.coherence.txn_committed(1, 100, 0)
        assert r.lco_fraction == 1.0

    def test_summary_keys(self):
        keys = self._result().summary().keys()
        for expected in ("roi_cycles", "cs_completed", "lco_fraction"):
            assert expected in keys
