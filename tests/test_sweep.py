"""Tests for the generic sweep framework."""

from dataclasses import replace

import pytest

from repro.config import NocConfig, SystemConfig
from repro.experiments.sweep import Sweep, SweepPoint, vary


def small_base():
    return SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)


class TestAxes:
    def test_vary_requires_values(self):
        with pytest.raises(ValueError):
            vary()

    def test_unknown_axis_without_configurator(self):
        sweep = Sweep(
            benchmark="vips", axes={"bogus": vary(1, 2)},
            base_config=small_base(), scale=0.3,
        )
        with pytest.raises(ValueError):
            sweep.run()

    def test_cartesian_points(self):
        sweep = Sweep(
            benchmark="vips",
            axes={"mechanism": vary("original", "inpg"),
                  "x": vary(1, 2, 3, configure=lambda c, v: c)},
        )
        assert len(list(sweep.points())) == 6


class TestRun:
    def test_mechanism_axis_with_replication(self):
        sweep = Sweep(
            benchmark="vips",
            primitive="mcs",
            axes={"mechanism": vary("original", "inpg")},
            seeds=(1, 2),
            scale=0.3,
            base_config=small_base(),
        )
        points = sweep.run()
        assert len(points) == 2
        for point in points:
            assert len(point.results) == 2
            assert point.mean("roi_cycles") > 0
            assert point.stderr("roi_cycles") >= 0.0
        mechs = {p.coordinates["mechanism"] for p in points}
        assert mechs == {"original", "inpg"}

    def test_custom_configurator_applies(self):
        def set_l2_latency(config, value):
            return replace(config, cache=replace(config.cache,
                                                 l2_latency=value))

        sweep = Sweep(
            benchmark="vips",
            primitive="mcs",
            axes={"l2": vary(2, 30, configure=set_l2_latency)},
            scale=0.3,
            base_config=small_base(),
        )
        points = {p.coordinates["l2"]: p for p in sweep.run()}
        # a 15x slower L2 must slow the run
        assert points[30].mean("roi_cycles") > points[2].mean("roi_cycles")

    def test_single_seed_stderr_zero(self):
        point = SweepPoint(coordinates={})
        assert point.stderr("roi_cycles") == 0.0
