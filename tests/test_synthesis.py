"""Unit tests for the Figure 7 synthesis model."""

import pytest

from repro.config import InpgConfig
from repro.synthesis import (
    big_router_synthesis,
    chip_summary,
    normal_router_synthesis,
    packet_generator_gates,
    packet_generator_power_overhead,
)


class TestPublishedConstants:
    def test_gate_counts(self):
        assert normal_router_synthesis().gates == 19_900
        assert big_router_synthesis().gates == 22_400
        assert packet_generator_gates() == 2_500

    def test_power_split(self):
        normal = normal_router_synthesis()
        big = big_router_synthesis()
        assert normal.dynamic_power_mw == pytest.approx(84.2)
        assert big.dynamic_power_mw == pytest.approx(92.6)
        # "adding 9.9% overhead to a normal router"
        assert packet_generator_power_overhead() == pytest.approx(0.099, abs=5e-3)

    def test_cell_density(self):
        assert normal_router_synthesis().cell_density == pytest.approx(0.6190)
        assert big_router_synthesis().cell_density == pytest.approx(0.6667)

    def test_tile_power(self):
        summary = chip_summary(InpgConfig(enabled=True, num_big_routers=32))
        assert summary["big_tile_power_mw"] == pytest.approx(716.1)
        assert summary["normal_tile_power_mw"] == pytest.approx(707.7)


class TestScalingModel:
    def test_generator_scales_with_table_size(self):
        small = packet_generator_gates(4)
        default = packet_generator_gates(16)
        large = packet_generator_gates(64)
        assert small < default < large
        assert default == 2_500

    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            packet_generator_gates(0)

    def test_big_router_power_scales(self):
        assert (
            big_router_synthesis(64).dynamic_power_mw
            > big_router_synthesis(16).dynamic_power_mw
        )

    def test_chip_power_overhead_grows_with_deployment(self):
        lo = chip_summary(InpgConfig(enabled=True, num_big_routers=4))
        hi = chip_summary(InpgConfig(enabled=True, num_big_routers=64))
        assert hi["power_overhead_pct"] > lo["power_overhead_pct"]
        # full deployment: 8.4mW x 64 over 64 x 707.7mW ~ 1.2%
        assert hi["power_overhead_pct"] < 2.0

    def test_disabled_inpg_has_zero_overhead(self):
        summary = chip_summary(InpgConfig(enabled=False))
        assert summary["num_big_routers"] == 0
        assert summary["power_overhead_pct"] == pytest.approx(0.0)
