"""Integration tests for ManyCoreSystem and run_benchmark."""

import pytest

from repro import (
    DeadlockError,
    ManyCoreSystem,
    SystemConfig,
    run_benchmark,
    single_lock_workload,
)
from repro.config import NocConfig
from repro.workloads import generate_workload


def small_config(**kw):
    return SystemConfig(
        noc=NocConfig(width=4, height=4), num_threads=16, **kw
    )


class TestManyCoreSystem:
    def test_full_run_produces_metrics(self):
        cfg = small_config()
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                                  cs_cycles=50, parallel_cycles=100)
        result = ManyCoreSystem(cfg, wl, primitive="tas").run()
        assert result.cs_completed == 32
        assert result.roi_cycles > 0
        assert result.total_coh > 0
        assert result.total_cse > 0
        assert result.mechanism == "original"
        assert result.benchmark == "microbench"

    def test_mechanism_naming(self):
        cfg = small_config().with_mechanism("inpg+ocor")
        wl = single_lock_workload(16, home_node=5, cs_per_thread=1)
        result = ManyCoreSystem(cfg, wl, primitive="qsl").run()
        assert result.mechanism == "inpg+ocor"

    def test_determinism(self):
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2)
        a = ManyCoreSystem(small_config(), wl, primitive="mcs").run()
        b = ManyCoreSystem(small_config(), wl, primitive="mcs").run()
        assert a.roi_cycles == b.roi_cycles
        assert a.total_coh == b.total_coh

    def test_too_many_threads_rejected(self):
        cfg = small_config()
        wl = single_lock_workload(17, home_node=5)
        with pytest.raises(ValueError):
            ManyCoreSystem(cfg, wl)

    def test_deadlock_detection(self):
        cfg = small_config()
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                                  parallel_cycles=1000)
        system = ManyCoreSystem(cfg, wl, primitive="tas")
        with pytest.raises(DeadlockError):
            system.run(max_cycles=50)  # absurdly small budget

    def test_inpg_deploys_big_routers(self):
        cfg = small_config().with_mechanism("inpg")
        wl = single_lock_workload(16, home_node=5, cs_per_thread=1)
        system = ManyCoreSystem(cfg, wl, primitive="tas")
        # default asks for 32 big routers; clamped to the 16-node mesh
        assert len(system.network.big_router_nodes()) == 16

    def test_timeline_consistent_with_metrics(self):
        cfg = small_config()
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                                  cs_cycles=50, parallel_cycles=100)
        result = ManyCoreSystem(cfg, wl, primitive="ticket").run()
        assert result.timeline.cs_completed() == result.cs_completed
        coh_from_timeline = result.timeline.phase_cycles("coh")
        assert coh_from_timeline == result.total_coh


class TestRunBenchmark:
    def test_runs_profile_benchmark(self):
        result = run_benchmark(
            "vips", mechanism="original", primitive="qsl",
            config=small_config(), scale=0.5,
        )
        assert result.benchmark == "vips"
        assert result.cs_completed > 0

    def test_mechanism_applied(self):
        result = run_benchmark(
            "vips", mechanism="inpg", config=small_config(), scale=0.5
        )
        assert result.mechanism == "inpg"

    def test_multi_lock_workload_completes(self):
        wl = generate_workload("raytrace", 16, 16, scale=1.0)
        assert wl.num_locks >= 2
        cfg = small_config()
        result = ManyCoreSystem(cfg, wl, primitive="mcs").run()
        assert result.cs_completed == wl.total_cs


@pytest.mark.parametrize("primitive", ["tas", "ticket", "abql", "mcs", "qsl"])
@pytest.mark.parametrize("mechanism", ["original", "ocor", "inpg", "inpg+ocor"])
class TestFullMatrix:
    """Every primitive x mechanism combination completes correctly."""

    def test_combination_completes(self, primitive, mechanism):
        cfg = small_config().with_mechanism(mechanism)
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                                  cs_cycles=40, parallel_cycles=80)
        result = ManyCoreSystem(cfg, wl, primitive=primitive).run(
            max_cycles=5_000_000
        )
        assert result.cs_completed == 32
        # one lock: acquisitions must be serialized, so the total CSE
        # time cannot exceed the ROI
        assert result.roi_cycles >= result.cs_completed
