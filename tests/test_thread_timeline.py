"""Tests for the worker thread model's phase accounting."""

from repro.config import NocConfig, SystemConfig
from repro import ManyCoreSystem
from repro.workloads import WorkItem, Workload


def make_workload(items_per_thread, threads=4):
    return Workload(
        benchmark="t", num_threads=threads, num_locks=1, lock_homes=[3],
        items=[list(items_per_thread) for _ in range(threads)],
    )


def run_system(workload, primitive="mcs"):
    cfg = SystemConfig(noc=NocConfig(width=4, height=4),
                       num_threads=workload.num_threads)
    return ManyCoreSystem(cfg, workload, primitive=primitive).run()


class TestPhaseAccounting:
    def test_phases_partition_the_roi(self):
        wl = make_workload([WorkItem(100, 0, 50), WorkItem(80, 0, 40)])
        result = run_system(wl)
        for tm in result.threads:
            # thread finishes at or before ROI end; phases partition its span
            assert tm.total_cycles <= result.roi_cycles
            assert tm.cs_completed == 2
            # parallel time is at least what the items requested
            assert tm.parallel_cycles >= 180

    def test_cse_includes_release(self):
        wl = make_workload([WorkItem(10, 0, 70)], threads=1)
        result = run_system(wl)
        tm = result.threads[0]
        # CSE covers the CS body plus the release transaction
        assert tm.cse_cycles >= 70
        assert tm.coh_cycles >= 0

    def test_contention_shows_up_as_coh(self):
        solo = run_system(make_workload([WorkItem(10, 0, 100)], threads=1))
        crowd = run_system(make_workload([WorkItem(10, 0, 100)], threads=8))
        solo_coh = solo.threads[0].coh_cycles
        mean_crowd_coh = sum(t.coh_cycles for t in crowd.threads) / 8
        assert mean_crowd_coh > solo_coh

    def test_empty_thread_completes_immediately(self):
        wl = Workload(
            benchmark="t", num_threads=2, num_locks=1, lock_homes=[3],
            items=[[], [WorkItem(10, 0, 10)]],
        )
        result = run_system(wl)
        assert result.threads[0].cs_completed == 0
        assert result.threads[1].cs_completed == 1
