"""Property tests for timeline window algebra and histograms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import Histogram, Timeline
from repro.stats.timeline import PHASES


@st.composite
def timeline_and_windows(draw):
    timeline = Timeline()
    n_threads = draw(st.integers(min_value=1, max_value=4))
    end_times = {}
    for thread in range(n_threads):
        cursor = 0
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            phase = draw(st.sampled_from(PHASES))
            duration = draw(st.integers(min_value=1, max_value=50))
            timeline.begin(thread, phase, cursor)
            cursor += duration
        timeline.end(thread, cursor)
        end_times[thread] = cursor
    horizon = max(end_times.values())
    a = draw(st.integers(min_value=0, max_value=horizon))
    b = draw(st.integers(min_value=0, max_value=horizon))
    return timeline, (min(a, b), max(a, b)), horizon


class TestTimelineProperties:
    @given(timeline_and_windows())
    @settings(max_examples=150)
    def test_window_partition_is_additive(self, data):
        """Splitting a window in two conserves per-phase cycles."""
        timeline, (lo, hi), _ = data
        mid = (lo + hi) // 2
        for phase in PHASES:
            whole = timeline.phase_cycles(phase, window=(lo, hi))
            left = timeline.phase_cycles(phase, window=(lo, mid))
            right = timeline.phase_cycles(phase, window=(mid, hi))
            assert whole == left + right

    @given(timeline_and_windows())
    @settings(max_examples=150)
    def test_window_totals_bounded_by_span(self, data):
        timeline, (lo, hi), _ = data
        threads = {iv.thread for iv in timeline.intervals}
        for thread in threads:
            total = sum(
                timeline.phase_cycles(p, window=(lo, hi), threads=[thread])
                for p in PHASES
            )
            assert total <= hi - lo

    @given(timeline_and_windows())
    @settings(max_examples=100)
    def test_full_window_equals_unwindowed(self, data):
        timeline, _, horizon = data
        for phase in PHASES:
            assert timeline.phase_cycles(phase) == timeline.phase_cycles(
                phase, window=(0, horizon)
            )


class TestHistogramProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=150)
    def test_counts_and_mean_conserved(self, samples, width):
        h = Histogram(bin_width=width)
        h.extend(samples)
        assert h.count == len(samples)
        assert sum(count for _, count in h.bins()) == len(samples)
        assert abs(h.mean - sum(samples) / len(samples)) < 1e-9
        assert h.max_sample == max(samples)

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_every_sample_falls_in_its_bin(self, samples):
        h = Histogram(bin_width=7)
        h.extend(samples)
        bins = dict(h.bins())
        for s in samples:
            start = (s // 7) * 7
            assert start in bins
