"""Unit and property tests for mesh topology and XY routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import Mesh


class TestMeshBasics:
    def test_dimensions(self):
        mesh = Mesh(8, 8)
        assert mesh.num_nodes == 64

    def test_coords_roundtrip(self):
        mesh = Mesh(8, 8)
        for node in range(64):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_paper_home_node_5_6(self):
        """The Figure 10 lock home is core (5,6) -> node 53 on the 8x8."""
        mesh = Mesh(8, 8)
        assert mesh.node_at(5, 6) == 53

    def test_out_of_range_coords(self):
        mesh = Mesh(4, 4)
        with pytest.raises(ValueError):
            mesh.node_at(4, 0)
        with pytest.raises(ValueError):
            mesh.coords(16)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)

    def test_neighbors_corner_and_center(self):
        mesh = Mesh(4, 4)
        assert sorted(mesh.neighbors(0)) == [1, 4]
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]


class TestXYRouting:
    def test_route_same_node(self):
        mesh = Mesh(4, 4)
        assert mesh.xy_route(5, 5) == [5]

    def test_route_goes_x_first(self):
        mesh = Mesh(4, 4)
        # (0,0) -> (2,2): X to column 2, then Y down
        assert mesh.xy_route(0, 10) == [0, 1, 2, 6, 10]

    def test_route_negative_directions(self):
        mesh = Mesh(4, 4)
        # (3,3)=15 -> (0,0)=0
        assert mesh.xy_route(15, 0) == [15, 14, 13, 12, 8, 4, 0]

    def test_next_hop_matches_route(self):
        mesh = Mesh(8, 8)
        path = mesh.xy_route(3, 60)
        for i in range(len(path) - 1):
            assert mesh.next_hop(path[i], 60) == path[i + 1]

    def test_next_hop_at_destination(self):
        mesh = Mesh(4, 4)
        assert mesh.next_hop(7, 7) == 7


@st.composite
def mesh_and_pair(draw):
    w = draw(st.integers(min_value=1, max_value=12))
    h = draw(st.integers(min_value=1, max_value=12))
    mesh = Mesh(w, h)
    src = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    return mesh, src, dst


class TestRoutingProperties:
    @given(mesh_and_pair())
    @settings(max_examples=200)
    def test_route_length_is_manhattan_distance(self, data):
        mesh, src, dst = data
        path = mesh.xy_route(src, dst)
        assert len(path) - 1 == mesh.hop_distance(src, dst)

    @given(mesh_and_pair())
    @settings(max_examples=200)
    def test_route_endpoints_and_adjacency(self, data):
        mesh, src, dst = data
        path = mesh.xy_route(src, dst)
        assert path[0] == src
        assert path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert b in set(mesh.neighbors(a))

    @given(mesh_and_pair())
    @settings(max_examples=200)
    def test_route_never_revisits_nodes(self, data):
        mesh, src, dst = data
        path = mesh.xy_route(src, dst)
        assert len(set(path)) == len(path)

    @given(mesh_and_pair())
    @settings(max_examples=100)
    def test_dimension_order(self, data):
        """Once the path starts moving in Y it never moves in X again."""
        mesh, src, dst = data
        path = mesh.xy_route(src, dst)
        moved_y = False
        for a, b in zip(path, path[1:]):
            ax, ay = mesh.coords(a)
            bx, by = mesh.coords(b)
            if ay != by:
                moved_y = True
            if ax != bx:
                assert not moved_y
