"""Tests for the topology family (torus, ring, degenerate meshes), the
per-class shape caches, the WRR arbiter, placement strategies, and the
flit-engine topology guard."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    InpgConfig,
    NocConfig,
    PLACEMENTS,
    TOPOLOGIES,
    SystemConfig,
)
from repro.errors import ReproError, UnsupportedTopology
from repro.noc.arbiter import WeightedRoundRobinArbiter, WrrOutputPort
from repro.noc.network import Network
from repro.noc.port import OutputPort
from repro.noc.topology import (
    TOPOLOGY_CLASSES,
    Mesh,
    Ring,
    Topology,
    Torus,
    make_topology,
)
from repro.sim import Simulator


class TestFactory:
    def test_axis_and_classes_agree(self):
        # the config axis and the class registry are the same vocabulary
        assert tuple(sorted(TOPOLOGY_CLASSES)) == tuple(sorted(TOPOLOGIES))
        assert TOPOLOGIES[0] == "mesh"  # default first, by convention

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_CLASSES))
    def test_make_topology_roundtrip(self, name):
        topo = make_topology(name, 4, 4)
        assert isinstance(topo, TOPOLOGY_CLASSES[name])
        assert topo.name == name
        assert topo.num_nodes == 16

    def test_case_insensitive(self):
        assert isinstance(make_topology("Torus", 4, 4), Torus)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("hypercube", 4, 4)


class TestShapeCaches:
    def test_caches_are_per_class(self):
        # same shape, different classes: rows must never leak across
        mesh, torus, ring = Mesh(4, 4), Torus(4, 4), Ring(4, 4)
        assert Mesh._SHAPE_CACHE is not Torus._SHAPE_CACHE
        assert Torus._SHAPE_CACHE is not Ring._SHAPE_CACHE
        # node 0 -> node 3: mesh goes right, torus wraps left, the ring
        # wraps backward through N-1; all three disagree at the first hop
        assert mesh.next_hop(0, 3) == 1
        assert torus.next_hop(0, 3) == 3
        assert ring.next_hop(0, 12) == 15

    def test_cache_keyed_per_shape(self):
        # 2x3 and 3x2 have the same node count but different geometry;
        # a shared row would route (node 1 -> node 5) identically
        a, b = Mesh(2, 3), Mesh(3, 2)
        assert a.next_hop_row(1) != b.next_hop_row(1)
        assert (2, 3) in Mesh._SHAPE_CACHE and (3, 2) in Mesh._SHAPE_CACHE
        assert Mesh._SHAPE_CACHE[(2, 3)] is not Mesh._SHAPE_CACHE[(3, 2)]

    def test_instances_share_rows(self):
        # the whole point of the cache: a fig12 sweep builds hundreds of
        # 8x8 meshes but computes each routing row exactly once
        first, second = Mesh(8, 8), Mesh(8, 8)
        assert first.next_hop_row(5) is second.next_hop_row(5)

    def test_base_class_cache_untouched(self):
        # concrete classes write to their own dicts, never the base's
        Mesh(5, 5).next_hop_row(0)
        assert (5, 5) not in Topology._SHAPE_CACHE


class TestDegenerateMeshes:
    """1xN and Nx1 meshes are lines: XY routing degenerates cleanly."""

    @pytest.mark.parametrize("width,height", [(1, 6), (6, 1), (1, 1)])
    def test_route_and_next_hop(self, width, height):
        mesh = make_topology("mesh", width, height)
        n = mesh.num_nodes
        for src in range(n):
            for dst in range(n):
                path = mesh.route(src, dst)
                assert path == mesh.xy_route(src, dst)
                assert len(path) - 1 == mesh.hop_distance(src, dst)
                step = 1 if dst >= src else -1
                assert path == list(range(src, dst + step, step))

    def test_line_neighbors(self):
        line = Mesh(1, 4)
        assert sorted(line.neighbors(0)) == [1]
        assert sorted(line.neighbors(2)) == [1, 3]
        assert list(Mesh(1, 1).neighbors(0)) == []

    def test_no_datelines(self):
        assert not Mesh(1, 6).has_datelines
        assert not Mesh(6, 1).crosses_dateline(5, 4)


class TestTorusRouting:
    def test_wraparound_shortens_paths(self):
        torus = Torus(8, 8)
        # corner to corner: 2 wrap hops instead of the mesh's 14
        assert torus.hop_distance(0, 63) == 2
        assert torus.route(0, 63) == [0, 7, 63]

    def test_interior_matches_mesh(self):
        torus, mesh = Torus(8, 8), Mesh(8, 8)
        # when no dimension benefits from wrapping, routes coincide
        assert torus.route(9, 27) == mesh.xy_route(9, 27)

    def test_tie_breaks_forward(self):
        torus = Torus(4, 1)
        # distance 2 both ways on a 4-ring: deterministic forward tie
        assert torus.next_hop(0, 2) == 1

    def test_neighbors_wrap_and_dedup(self):
        torus = Torus(4, 4)
        assert sorted(torus.neighbors(0)) == [1, 3, 4, 12]
        # a 2-wide dimension: wrap link coincides with the direct link
        assert sorted(Torus(2, 2).neighbors(0)) == [1, 2]

    def test_dateline_predicate(self):
        torus = Torus(4, 4)
        assert torus.crosses_dateline(3, 0)      # x wrap
        assert torus.crosses_dateline(0, 3)
        assert torus.crosses_dateline(0, 12)     # y wrap
        assert not torus.crosses_dateline(1, 2)  # plain hop
        # width/height 2: no distinct wrap link, no dateline
        assert not Torus(2, 2).crosses_dateline(0, 1)


class TestRingRouting:
    def test_shortest_direction(self):
        ring = Ring(8, 8)  # 64 nodes on one ring
        assert ring.route(2, 62) == [2, 1, 0, 63, 62]
        assert ring.hop_distance(2, 62) == 4

    def test_tie_breaks_forward(self):
        ring = Ring(4, 1)
        assert ring.next_hop(0, 2) == 1

    def test_neighbors(self):
        ring = Ring(4, 2)
        assert sorted(ring.neighbors(0)) == [1, 7]
        assert sorted(Ring(2, 1).neighbors(0)) == [1]
        assert list(Ring(1, 1).neighbors(0)) == []

    def test_dateline_is_the_wrap_link(self):
        ring = Ring(4, 2)
        assert ring.crosses_dateline(7, 0) and ring.crosses_dateline(0, 7)
        assert not ring.crosses_dateline(3, 4)
        assert not Ring(2, 1).crosses_dateline(0, 1)

    def test_addressing_stays_row_major(self):
        # coords/node_at keep the shared scheme placement relies on
        ring = Ring(8, 8)
        assert ring.node_at(5, 6) == 53
        assert ring.coords(53) == (5, 6)


@st.composite
def topo_and_pair(draw):
    name = draw(st.sampled_from(sorted(TOPOLOGY_CLASSES)))
    w = draw(st.integers(min_value=1, max_value=9))
    h = draw(st.integers(min_value=1, max_value=9))
    topo = make_topology(name, w, h)
    src = draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    return topo, src, dst


class TestFamilyProperties:
    """The mesh routing properties hold for every topology in the axis."""

    @given(topo_and_pair())
    @settings(max_examples=300)
    def test_route_is_minimal(self, data):
        topo, src, dst = data
        path = topo.route(src, dst)
        assert len(path) - 1 == topo.hop_distance(src, dst)

    @given(topo_and_pair())
    @settings(max_examples=300)
    def test_route_endpoints_and_adjacency(self, data):
        topo, src, dst = data
        path = topo.route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(set(path)) == len(path)
        for a, b in zip(path, path[1:]):
            assert b in set(topo.neighbors(a))

    @given(topo_and_pair())
    @settings(max_examples=200)
    def test_at_most_one_dateline_crossing_per_dimension(self, data):
        # the deadlock argument (DESIGN.md §15) needs every minimal route
        # to cross each dateline at most once: one escalation suffices
        topo, src, dst = data
        path = topo.route(src, dst)
        crossings = sum(
            topo.crosses_dateline(a, b) for a, b in zip(path, path[1:])
        )
        assert crossings <= (2 if isinstance(topo, Torus) else 1)


class TestWrrArbiter:
    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter(())
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter((2, 0))

    def test_weight_of_wraps_by_index(self):
        arb = WeightedRoundRobinArbiter((3, 1))
        assert arb.weight_of(0) == 3
        assert arb.weight_of(1) == 1
        assert arb.weight_of(2) == 3  # dateline class inherits pattern

    def _drain(self, arb):
        order = []
        while True:
            granted = arb.pop()
            if granted is None:
                return order
            order.append(granted[1].payload)

    def test_weighted_interleave_under_backlog(self):
        from repro.noc.packet import Packet

        arb = WeightedRoundRobinArbiter((2, 1))
        for i, (payload, vnet) in enumerate([
            ("c1", 0), ("c2", 0), ("c3", 0), ("c4", 0),
            ("d1", 1), ("d2", 1),
        ]):
            arb.push(Packet(0, 1, payload, vnet=vnet), lambda p: None, now=i)
        # strict priority would drain c1..c4 first; WRR rotates 2:1
        assert self._drain(arb) == ["c1", "c2", "d1", "c3", "c4", "d2"]
        assert arb.pending == 0

    def test_deterministic_replay(self):
        from repro.noc.packet import Packet

        def run():
            arb = WeightedRoundRobinArbiter((2, 1), priority_aware=True)
            for i in range(12):
                arb.push(
                    Packet(0, 1, f"p{i}", priority=i % 3, vnet=i % 2),
                    lambda p: None, now=i // 4,
                )
            return self._drain(arb)

        assert run() == run()


class TestWrrOutputPort:
    def _port_order(self, port_cls, **kwargs):
        from repro.noc.packet import Packet

        sim = Simulator()
        port = port_cls(sim, "p", **kwargs)
        order = []
        seen = lambda p: order.append(p.payload)
        # a 4-flit data burst occupies the port; the rest queue behind it
        sim.schedule(0, port.request,
                     Packet(0, 1, "burst", size_flits=4, vnet=1), seen)
        for i, (payload, vnet) in enumerate([
            ("c1", 0), ("c2", 0), ("c3", 0), ("d1", 1),
        ]):
            sim.schedule(1, port.request, Packet(0, 1, payload, vnet=vnet),
                         seen)
        sim.run()
        return port, order

    def test_interleaves_where_base_port_prioritizes(self):
        base, base_order = self._port_order(OutputPort)
        wrr, wrr_order = self._port_order(WrrOutputPort, weights=(2, 1))
        assert base_order == ["burst", "c1", "c2", "c3", "d1"]
        assert wrr_order == ["burst", "c1", "c2", "d1", "c3"]

    def test_stats_contract_matches_base(self):
        base, _ = self._port_order(OutputPort)
        wrr, _ = self._port_order(WrrOutputPort, weights=(2, 1))
        for stat in ("packets_sent", "flits_sent", "peak_queue_depth"):
            assert getattr(wrr, stat) == getattr(base, stat), stat
        assert wrr.total_wait_cycles > 0
        assert wrr.mean_wait == wrr.total_wait_cycles / wrr.packets_sent
        assert wrr.queue_depth == 0

    def test_uncontended_fast_path(self):
        from repro.noc.packet import Packet

        sim = Simulator()
        port = WrrOutputPort(sim, "p", weights=(2, 1))
        granted = []
        port.request(Packet(0, 1, "only"), lambda p: granted.append(p))
        sim.run()
        assert [p.payload for p in granted] == ["only"]
        assert port.total_wait_cycles == 0
        assert port.peak_queue_depth == 1  # base-port invariant kept


def _delivering_network(noc):
    sim = Simulator()
    net = Network(sim, noc)
    delivered = []
    for n in range(noc.num_nodes):
        net.register_endpoint(n, delivered.append)
    return sim, net, delivered


class TestNetworkIntegration:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_all_pairs_deliver(self, topology):
        noc = NocConfig(width=4, height=4, topology=topology)
        sim, net, delivered = _delivering_network(noc)
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    net.send(src, dst, (src, dst))
        sim.run()
        assert len(delivered) == 16 * 15
        assert {p.payload for p in delivered} == {
            (s, d) for s in range(16) for d in range(16) if s != d
        }

    def test_topology_alias(self):
        sim = Simulator()
        net = Network(sim, NocConfig(width=4, height=4, topology="torus"))
        assert net.topology is net.mesh
        assert isinstance(net.topology, Torus)

    def test_dateline_escalates_vnet_once(self):
        noc = NocConfig(width=4, height=2, topology="ring")
        sim, net, delivered = _delivering_network(noc)
        net.send(1, 7, "wrap")  # shortest path 1 -> 0 -> 7 wraps
        net.send(1, 3, "plain")
        sim.run()
        by_payload = {p.payload: p for p in delivered}
        assert net.dateline_crossings == 1
        assert by_payload["wrap"].vnet == 2   # 0 -> dateline class
        assert by_payload["plain"].vnet == 0  # never crossed

    def test_mesh_has_no_dateline_path(self):
        sim, net, _ = _delivering_network(NocConfig(width=4, height=4))
        assert net.dateline_crossings == 0
        router = net.routers[0]
        assert not hasattr(router, "_dateline_row")

    def test_make_port_selects_arbiter(self):
        sim = Simulator()
        rr = Network(sim, NocConfig(width=2, height=2))
        assert type(rr.make_port("x")) is OutputPort
        wrr = Network(
            Simulator(),
            NocConfig(width=2, height=2, arbiter="wrr", wrr_weights=(3, 1)),
        )
        port = wrr.make_port("x")
        assert isinstance(port, WrrOutputPort)
        assert port._arbiter.weight_of(0) == 3


class TestFlitEngineGuard:
    """The flit engines model a mesh pipeline; other fabrics must fail
    loudly and structurally, never silently route as a mesh."""

    def _check(self, exc):
        assert isinstance(exc, ReproError)
        assert isinstance(exc, ValueError)
        assert exc.topology in ("torus", "ring")
        assert exc.supported == ("mesh",)

    @pytest.mark.parametrize("topology", ["torus", "ring"])
    def test_event_engine_rejects(self, topology):
        from repro.noc.flitsim import FlitNetwork

        with pytest.raises(UnsupportedTopology) as excinfo:
            FlitNetwork(Simulator(), NocConfig(width=4, height=4,
                                               topology=topology))
        self._check(excinfo.value)
        assert excinfo.value.model == "flit/event"

    @pytest.mark.parametrize("topology", ["torus", "ring"])
    def test_vector_engine_rejects(self, topology):
        from repro.noc.vecflit import VectorFlitNetwork

        with pytest.raises(UnsupportedTopology) as excinfo:
            VectorFlitNetwork(NocConfig(width=4, height=4,
                                        topology=topology))
        self._check(excinfo.value)
        assert excinfo.value.model == "flit/vector"


class TestPlacement:
    def test_axis_vocabulary(self):
        assert PLACEMENTS == ("spread", "center", "perimeter")
        with pytest.raises(ValueError, match="placement"):
            InpgConfig(placement="corners")

    def test_spread_is_the_paper_default(self):
        from repro.inpg.deployment import (
            evenly_spread_nodes,
            place_big_routers,
        )

        mesh = Mesh(8, 8)
        inpg = InpgConfig(enabled=True, num_big_routers=32)
        assert place_big_routers(mesh, inpg) == evenly_spread_nodes(mesh, 32)

    def test_center_picks_the_middle_of_the_mesh(self):
        from repro.inpg.deployment import central_nodes

        assert central_nodes(Mesh(4, 4), 4) == frozenset({5, 6, 9, 10})

    def test_perimeter_picks_the_corners(self):
        from repro.inpg.deployment import perimeter_nodes

        assert perimeter_nodes(Mesh(4, 4), 4) == frozenset({0, 3, 12, 15})

    def test_strategies_disjoint_styles(self):
        from repro.inpg.deployment import central_nodes, perimeter_nodes

        mesh = Mesh(8, 8)
        assert not central_nodes(mesh, 8) & perimeter_nodes(mesh, 8)

    def test_torus_centrality_degenerates_to_id_order(self):
        from repro.inpg.deployment import central_nodes

        # every torus node is equally central: ties break by node id
        assert central_nodes(Torus(4, 4), 3) == frozenset({0, 1, 2})

    def test_count_clamped_to_fabric(self):
        from repro.inpg.deployment import place_big_routers

        small = Mesh(2, 2)
        inpg = InpgConfig(enabled=True, num_big_routers=32)
        assert place_big_routers(small, inpg) == frozenset(range(4))

    @pytest.mark.parametrize("placement", sorted(PLACEMENTS))
    def test_system_runs_under_every_placement(self, placement):
        from repro.system import run_benchmark

        config = SystemConfig().with_overrides(
            noc={"width": 4, "height": 4},
            inpg={"enabled": True, "num_big_routers": 8,
                  "placement": placement},
            num_threads=16,
        )
        result = run_benchmark("vips", mechanism=None, scale=0.2,
                               config=config)
        assert result.roi_cycles > 0
