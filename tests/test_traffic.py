"""Tests for synthetic traffic patterns and the load-latency harness."""

import pytest

from repro.config import NocConfig
from repro.noc.topology import Mesh
from repro.noc.traffic import (
    PATTERNS,
    bit_complement,
    hotspot,
    latency_load_curve,
    run_packet_traffic,
    transpose,
    uniform_random,
)
from repro.sim import make_rng


class TestPatterns:
    def test_uniform_never_self(self):
        mesh = Mesh(4, 4)
        rng = make_rng(1, "t")
        for src in range(16):
            for _ in range(20):
                assert uniform_random(mesh, src, rng) != src

    def test_transpose_is_involution(self):
        mesh = Mesh(8, 8)
        for src in range(64):
            dst = transpose(mesh, src, None)
            assert transpose(mesh, dst, None) == src

    def test_bit_complement_symmetric(self):
        mesh = Mesh(8, 8)
        assert bit_complement(mesh, 0, None) == 63
        assert bit_complement(mesh, 63, None) == 0

    def test_hotspot_targets_fixed_node(self):
        mesh = Mesh(4, 4)
        pat = hotspot(5)
        assert all(pat(mesh, s, None) == 5 for s in range(16))


class TestHarness:
    def test_all_offered_packets_delivered(self):
        result = run_packet_traffic(
            NocConfig(width=4, height=4), "uniform",
            injection_rate=0.02, duration=500,
        )
        assert result.offered > 0
        assert result.delivered == result.offered
        assert result.accepted_fraction == 1.0
        assert result.mean_latency > 0

    def test_latency_grows_with_load(self):
        curve = latency_load_curve(
            NocConfig(width=4, height=4), "uniform",
            rates=(0.01, 0.15), duration=800, size_flits=4,
        )
        assert curve[1].mean_latency > curve[0].mean_latency

    def test_hotspot_saturates_harder_than_uniform(self):
        cfg = NocConfig(width=4, height=4)
        uni = run_packet_traffic(cfg, "uniform", 0.08, duration=600,
                                 size_flits=4)
        hot = run_packet_traffic(cfg, "hotspot:5", 0.08, duration=600,
                                 size_flits=4)
        assert hot.mean_latency > uni.mean_latency

    def test_invalid_inputs(self):
        cfg = NocConfig(width=4, height=4)
        with pytest.raises(ValueError):
            run_packet_traffic(cfg, "uniform", injection_rate=0.0)
        with pytest.raises(ValueError):
            run_packet_traffic(cfg, "no-such-pattern")

    def test_pattern_registry(self):
        assert set(PATTERNS) >= {"uniform", "transpose", "bit_complement",
                                 "neighbor"}
