"""Tests for the vectorized flit engine (:mod:`repro.noc.vecflit`).

The vector engine's whole claim is *bit-exactness*: it must replay the
event-driven reference (:mod:`repro.noc.flitsim`) delivery for delivery
under every drive — standalone ``send_at``/``run``, kernel co-simulation
via ``schedule_at``, NumPy and pure-Python paths.  These tests pin that
claim against the committed flit golden, property-check it on randomized
traffic, and cover the engine's refusals (multi-cycle links, router/link
fault sites) and the system-level selection/fallback rules.
"""

import hashlib

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import FLIT_ENGINES, NocConfig
from repro.errors import UnsupportedFaultSite
from repro.faults import FaultPlan
from repro.faults.injector import FaultInjector
from repro.noc.flitsim import FlitNetwork
from repro.noc.vecflit import (
    HAS_NUMPY,
    VectorFlitFabric,
    VectorFlitNetwork,
    make_flit_network,
)
from repro.sim import Simulator, make_rng

from test_golden_determinism import GOLDEN_FLIT


def _golden_plan(num_nodes=64, packets=1200, seed=11):
    """The committed flit-golden drive: (cycle, src, dst, length) rows."""
    rng = make_rng(seed, "perf/flit")
    plan = []
    for i in range(packets):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        while dst == src:
            dst = rng.randrange(num_nodes)
        plan.append((i // 2, src, dst, 8 if i % 4 == 0 else 1))
    return plan


def _fingerprint(delivered):
    digest = hashlib.md5()
    for p in delivered:
        digest.update(
            b"%d,%d,%d,%d,%d;"
            % (p.src, p.dst, p.length, p.injected_cycle, p.delivered_cycle)
        )
    return digest.hexdigest()


def _run_cosim(engine, mesh_width, plan, force_python=False):
    """Drive one engine through the kernel; return its observable trace."""
    sim = Simulator()
    cfg = NocConfig(width=mesh_width, height=mesh_width)
    if engine == "event":
        net = FlitNetwork(sim, cfg)
    else:
        net = VectorFlitNetwork(cfg, sim=sim, force_python=force_python)
    for cycle, src, dst, length in plan:
        sim.schedule_at(cycle, net.send, src, dst, length)
    sim.run(until=2_000_000)
    stream = [
        (p.src, p.dst, p.length, p.injected_cycle, p.delivered_cycle)
        for p in net.delivered
    ]
    return stream, sim.cycle, sim.events_processed


def _random_plan(seed):
    """Randomized bursty traffic: clustered injects, mixed lengths."""
    rng = make_rng(seed, "test/vecflit-parity")
    mesh = 4 if seed % 2 == 0 else 8
    nodes = mesh * mesh
    plan = []
    for _ in range(rng.randrange(120, 260)):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        plan.append(
            (rng.randrange(0, 80), src, dst, rng.randrange(1, 9))
        )
    return mesh, plan


class TestVectorGolden:
    """The vector engine reproduces the committed flit golden."""

    def test_cosim_drive_matches_pinned_golden(self):
        sim = Simulator()
        net = VectorFlitNetwork(NocConfig(width=8, height=8), sim=sim)
        for cycle, src, dst, length in _golden_plan():
            sim.schedule_at(cycle, net.send, src, dst, length)
        sim.run(until=2_000_000)
        assert (
            _fingerprint(net.delivered),
            sim.events_processed,
            len(net.delivered),
        ) == GOLDEN_FLIT

    def test_standalone_drive_matches_pinned_golden(self):
        net = VectorFlitNetwork(NocConfig(width=8, height=8))
        for cycle, src, dst, length in _golden_plan():
            net.send_at(cycle, src, dst, length)
        net.run(until=2_000_000)
        assert (
            _fingerprint(net.delivered),
            net.events_processed,
            len(net.delivered),
        ) == GOLDEN_FLIT

    def test_pure_python_path_matches_pinned_golden(self):
        sim = Simulator()
        net = VectorFlitNetwork(
            NocConfig(width=8, height=8), sim=sim, force_python=True
        )
        for cycle, src, dst, length in _golden_plan():
            sim.schedule_at(cycle, net.send, src, dst, length)
        sim.run(until=2_000_000)
        assert (
            _fingerprint(net.delivered),
            sim.events_processed,
            len(net.delivered),
        ) == GOLDEN_FLIT


class TestEngineParity:
    """Property test: event and vector engines are indistinguishable
    (delivered stream, final cycle, event count) on randomized traffic."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_traffic_parity(self, seed):
        mesh, plan = _random_plan(seed)
        assert _run_cosim("event", mesh, plan) == \
            _run_cosim("vector", mesh, plan)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_pure_python_parity(self, seed):
        """The no-NumPy fallback is the same engine, not an approximation."""
        mesh, plan = _random_plan(seed)
        assert _run_cosim("event", mesh, plan) == \
            _run_cosim("vector", mesh, plan, force_python=True)


class TestImportShim:
    def test_engine_works_without_numpy(self):
        """Reload the module with numpy import-blocked: HAS_NUMPY drops
        to False and the engine still runs (pure-Python fallback)."""
        import builtins
        import importlib
        import sys

        import repro.noc.vecflit as vecflit

        real_import = builtins.__import__

        def blocked(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError(f"blocked for test: {name}")
            return real_import(name, *args, **kwargs)

        saved_numpy = sys.modules.pop("numpy", None)
        builtins.__import__ = blocked
        try:
            mod = importlib.reload(vecflit)
            assert mod.HAS_NUMPY is False
            net = mod.VectorFlitNetwork(NocConfig(width=4, height=4))
            net.send_at(0, 0, 15, 8)
            net.send_at(1, 5, 3, 1)
            net.run(until=100_000)
            assert len(net.delivered) == 2
        finally:
            builtins.__import__ = real_import
            if saved_numpy is not None:
                sys.modules["numpy"] = saved_numpy
            importlib.reload(vecflit)
        assert vecflit.HAS_NUMPY == (saved_numpy is not None)


class TestEngineGuards:
    def test_multi_cycle_links_refused(self):
        with pytest.raises(ValueError, match="link_cycles"):
            VectorFlitNetwork(NocConfig(width=4, height=4, link_cycles=2))

    def test_factory_selects_engines(self):
        # resolve classes through the module: the import-shim test
        # reloads vecflit, so collection-time imports can be stale
        import repro.noc.vecflit as vecflit

        sim = Simulator()
        cfg = NocConfig(width=4, height=4)
        assert isinstance(
            make_flit_network(sim, cfg, "event"), FlitNetwork
        )
        assert isinstance(
            make_flit_network(Simulator(), cfg, "vector"),
            vecflit.VectorFlitNetwork,
        )
        with pytest.raises(ValueError, match="unknown flit engine"):
            make_flit_network(sim, cfg, "bogus")

    def test_config_validates_engine_axis(self):
        assert NocConfig(flit_engine="vector").flit_engine == "vector"
        with pytest.raises(ValueError, match="flit engine"):
            NocConfig(flit_engine="simd")
        assert set(FLIT_ENGINES) == {"event", "vector", "sharded"}

    def test_default_engine_keeps_spec_fingerprints(self):
        """Spelling out flit_engine='event' must not re-address cached
        results; 'vector' is a different run and must."""
        from repro.exec import RunSpec

        def spec(**noc_kw):
            return RunSpec(
                benchmark="bwaves",
                config=SystemConfig(noc=NocConfig(flit_level=True, **noc_kw)),
            )

        assert spec().fingerprint == spec(flit_engine="event").fingerprint
        assert spec().fingerprint != spec(flit_engine="vector").fingerprint


def _lock_workload():
    return single_lock_workload(
        8, home_node=5, cs_per_thread=2, cs_cycles=50, parallel_cycles=150
    )


def _flit_system_config(engine):
    return SystemConfig(
        noc=NocConfig(width=4, height=4, flit_level=True,
                      flit_engine=engine),
        num_threads=16,
    )


class TestVectorFullSystem:
    def test_vector_fabric_is_selected(self):
        import repro.noc.vecflit as vecflit

        system = ManyCoreSystem(
            _flit_system_config("vector"), _lock_workload(), primitive="mcs"
        )
        assert isinstance(system.network, vecflit.VectorFlitFabric)

    def test_observed_runs_fall_back_to_event_engine(self):
        """Tracing has no per-event site inside a batched cycle, so an
        observed run silently uses the bit-exact event reference."""
        from repro.noc.flit_fabric import FlitFabric
        from repro.obs import Observation

        system = ManyCoreSystem(
            _flit_system_config("vector"), _lock_workload(),
            primitive="mcs", observe=Observation(label="t"),
        )
        assert isinstance(system.network, FlitFabric)

    def test_full_system_is_deterministic(self):
        """Vector full-system runs are a pure function of their config:
        two fresh builds replay each other exactly."""

        def run():
            return ManyCoreSystem(
                _flit_system_config("vector"), _lock_workload(),
                primitive="mcs",
            ).run(max_cycles=20_000_000)

        first, second = run(), run()
        assert first.roi_cycles == second.roi_cycles
        assert first.network_packets == second.network_packets
        assert first.extra["sim_events"] == second.extra["sim_events"]

    def test_full_system_agrees_with_event_engine(self):
        """Full-system runs complete the same work on both engines.

        Network-level drives are bit-exact (the golden tests above), but
        a full system feeds deliveries back into injections *mid-cycle*:
        the event engine interleaves those per tick while the batched
        engine orders them per phase, so the two executions are distinct
        valid schedules — close, not identical (see DESIGN.md §13)."""
        event = ManyCoreSystem(
            _flit_system_config("event"), _lock_workload(), primitive="mcs"
        ).run(max_cycles=20_000_000)
        vector = ManyCoreSystem(
            _flit_system_config("vector"), _lock_workload(), primitive="mcs"
        ).run(max_cycles=20_000_000)
        assert vector.cs_completed == event.cs_completed == 16
        assert abs(vector.roi_cycles - event.roi_cycles) \
            <= 0.15 * event.roi_cycles
        assert abs(vector.network_mean_latency - event.network_mean_latency) \
            <= 0.25 * event.network_mean_latency


class TestVectorFaults:
    def test_router_sites_refused_structurally(self):
        fabric = VectorFlitFabric(Simulator(), NocConfig(width=4, height=4))
        plan = FaultPlan.parse("drop:1@router:3", seed=1)
        with pytest.raises(UnsupportedFaultSite) as excinfo:
            FaultInjector(plan).install(fabric)
        assert excinfo.value.model == "flit/vector"
        assert excinfo.value.site_kinds == ("router",)

    def test_inject_sites_apply(self):
        """Injection-site faults work as a filter in front of the fabric:
        a drop-everything plan delivers nothing."""
        sim = Simulator()
        fabric = VectorFlitFabric(sim, NocConfig(width=4, height=4))
        for n in range(16):
            fabric.register_endpoint(n, lambda p: None)
        FaultInjector(FaultPlan.parse("drop:1@inject", seed=1)).install(fabric)
        for src in range(4):
            fabric.send(src, 15, payload="x", size_flits=2)
        sim.run(until=100_000)
        assert fabric.packets_injected == 4
        assert fabric.packets_dropped == 4
        assert fabric.packets_delivered == 0
        assert fabric.in_flight == 0
