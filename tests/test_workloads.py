"""Unit tests for benchmark profiles and workload generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ALL_PROFILES,
    OMP2012_PROFILES,
    PARSEC_PROFILES,
    generate_workload,
    get_profile,
    group_of,
    grouped_profiles,
    single_lock_workload,
)


class TestProfiles:
    def test_suite_counts_match_paper(self):
        """10 PARSEC programs (footnote 4) + all 14 SPEC OMP2012."""
        assert len(PARSEC_PROFILES) == 10
        assert len(OMP2012_PROFILES) == 14
        assert len(ALL_PROFILES) == 24

    def test_excluded_parsec_programs(self):
        names = {p.name for p in PARSEC_PROFILES}
        assert "blackscholes" not in names
        assert "swaptions" not in names

    def test_short_names_match_footnote5(self):
        for full, short in [
            ("bodytrack", "body"), ("canneal", "can"), ("facesim", "face"),
            ("fluidanimate", "fluid"), ("freqmine", "freq"),
            ("streamcluster", "stream"),
        ]:
            assert get_profile(full).short_name == short
            assert get_profile(short).name == full

    def test_fluid_many_short_vs_imag_fewer_longer(self):
        """Section 5.2.1's contrast between fluid and imag."""
        fluid, imag = get_profile("fluid"), get_profile("imag")
        assert fluid.total_cs > imag.total_cs
        assert fluid.cs_cycles_mean < imag.cs_cycles_mean

    def test_groups_are_6_12_6(self):
        groups = grouped_profiles()
        assert len(groups[1]) == 6
        assert len(groups[2]) == 12
        assert len(groups[3]) == 6

    def test_groups_ordered_by_cs_time(self):
        groups = grouped_profiles()
        max_g1 = max(p.nominal_cs_time for p in groups[1])
        min_g3 = min(p.nominal_cs_time for p in groups[3])
        assert max_g1 <= min_g3

    def test_heavy_programs_in_group3(self):
        for name in ("nab", "kdtree", "facesim", "fluidanimate"):
            assert group_of(name) == 3, name

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_profile("doom")


class TestGenerator:
    def test_workload_dimensions(self):
        wl = generate_workload("freqmine", num_threads=64, mesh_nodes=64)
        assert wl.num_threads == 64
        assert len(wl.items) == 64
        profile = get_profile("freqmine")
        assert all(len(seq) == profile.cs_per_thread for seq in wl.items)
        assert wl.num_locks == profile.num_locks
        assert len(wl.lock_homes) == wl.num_locks

    def test_determinism_per_seed(self):
        a = generate_workload("md", 16, 64, seed=7)
        b = generate_workload("md", 16, 64, seed=7)
        assert a.items == b.items
        assert a.lock_homes == b.lock_homes

    def test_different_seeds_differ(self):
        a = generate_workload("md", 16, 64, seed=7)
        b = generate_workload("md", 16, 64, seed=8)
        assert a.items != b.items

    def test_scale_changes_cs_count(self):
        full = generate_workload("nab", 8, 64, scale=1.0)
        half = generate_workload("nab", 8, 64, scale=0.5)
        assert len(half.items[0]) < len(full.items[0])
        assert len(half.items[0]) >= 1

    def test_lock_home_override(self):
        wl = generate_workload("nab", 8, 64, lock_homes=[53])
        assert wl.lock_homes == [53]
        assert wl.num_locks == 1
        assert all(item.lock_index == 0 for seq in wl.items for item in seq)

    @given(
        st.sampled_from([p.name for p in ALL_PROFILES]),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_items_are_well_formed(self, name, threads, seed):
        wl = generate_workload(name, threads, 64, seed=seed)
        for seq in wl.items:
            for item in seq:
                assert item.parallel_cycles >= 1
                assert item.cs_cycles >= 1
                assert 0 <= item.lock_index < wl.num_locks
        for home in wl.lock_homes:
            assert 0 <= home < 64


class TestSingleLockWorkload:
    def test_microbench_shape(self):
        wl = single_lock_workload(64, home_node=53, cs_per_thread=3)
        assert wl.num_locks == 1
        assert wl.lock_homes == [53]
        assert wl.total_cs == 192
